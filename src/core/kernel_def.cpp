#include "core/kernel_def.hpp"

#include <cctype>

#include "nvrtcsim/lexer.hpp"
#include "nvrtcsim/nvrtc.hpp"
#include "util/errors.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

namespace kl::core {

KernelSource KernelSource::inline_source(std::string file_name, std::string content) {
    KernelSource source;
    source.file_name_ = std::move(file_name);
    source.content_ = std::move(content);
    source.has_content_ = true;
    return source;
}

std::string KernelSource::read() const {
    if (has_content_) {
        return content_;
    }
    return read_text_file(file_name_);
}

json::Value KernelSource::to_json() const {
    json::Value out = json::Value::object();
    out["file"] = file_name_;
    // Captures must be self-contained: embed the text even for file-backed
    // sources.
    out["content"] = read();
    return out;
}

KernelSource KernelSource::from_json(const json::Value& v) {
    return inline_source(v.get_string_or("file", "<capture>"), v["content"].as_string());
}

std::string KernelParam::to_string() const {
    std::string out = type.empty() ? "?" : type;
    if (is_pointer) {
        out += "*";
    }
    if (!name.empty()) {
        out += " " + name;
    }
    return out;
}

namespace {

/// Splits a parameter list at top-level commas (angle brackets and
/// parentheses nest).
std::vector<std::string> split_params(std::string_view list) {
    std::vector<std::string> out;
    int depth = 0;
    std::string current;
    for (char c : list) {
        if (c == '(' || c == '<' || c == '[') {
            depth++;
        } else if (c == ')' || c == '>' || c == ']') {
            depth--;
        }
        if (c == ',' && depth == 0) {
            out.emplace_back(trim(current));
            current.clear();
        } else {
            current += c;
        }
    }
    std::string_view last = trim(current);
    if (!last.empty()) {
        out.emplace_back(last);
    }
    return out;
}

/// Parses one parameter declaration, e.g. "const real *__restrict__ ut" or
/// "int n". Qualifiers are dropped; the last identifier that is not part of
/// the type is the parameter name.
KernelParam parse_param(std::string_view decl) {
    KernelParam param;
    // (word, seen after the first '*'?) — "const float*" makes the pointee
    // const, but "float* const" only makes the pointer itself const.
    std::vector<std::pair<std::string, bool>> words;
    std::string current;
    for (char c : decl) {
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
            current += c;
        } else {
            if (!current.empty()) {
                words.emplace_back(current, param.is_pointer);
                current.clear();
            }
            if (c == '*' || c == '[') {
                param.is_pointer = true;
            }
        }
    }
    if (!current.empty()) {
        words.emplace_back(current, param.is_pointer);
    }
    std::vector<std::string> meaningful;
    for (const auto& [w, after_star] : words) {
        if (w == "const" || w == "volatile" || w == "__restrict__" || w == "restrict"
            || w == "struct") {
            param.is_const = param.is_const || (w == "const" && !after_star);
            continue;
        }
        meaningful.push_back(w);
    }
    if (meaningful.empty()) {
        return param;
    }
    if (meaningful.size() == 1) {
        // "float" (unnamed) — treat the sole word as the type.
        param.type = meaningful[0];
        return param;
    }
    param.name = meaningful.back();
    meaningful.pop_back();
    param.type = join(meaningful, " ");
    return param;
}

}  // namespace

std::optional<std::vector<KernelParam>> parse_kernel_signature(
    const std::string& source,
    const std::string& kernel_name) {
    const std::string code = rtc::strip_comments(source);

    // Find the kernel name as a whole token that is followed by '(' and
    // preceded (somewhere earlier) by __global__.
    size_t global_pos = code.find("__global__");
    if (global_pos == std::string::npos) {
        return std::nullopt;
    }
    size_t search = 0;
    while ((search = code.find(kernel_name, search)) != std::string::npos) {
        const bool boundary_before = search == 0
            || (!std::isalnum(static_cast<unsigned char>(code[search - 1]))
                && code[search - 1] != '_');
        size_t after = search + kernel_name.size();
        const bool boundary_after = after >= code.size()
            || (!std::isalnum(static_cast<unsigned char>(code[after])) && code[after] != '_');
        if (!boundary_before || !boundary_after || search < global_pos) {
            search = after;
            continue;
        }
        // Skip whitespace to the parameter list.
        size_t open = after;
        while (open < code.size()
               && std::isspace(static_cast<unsigned char>(code[open]))) {
            open++;
        }
        if (open >= code.size() || code[open] != '(') {
            search = after;
            continue;
        }
        int depth = 0;
        size_t close = open;
        for (; close < code.size(); close++) {
            if (code[close] == '(') {
                depth++;
            } else if (code[close] == ')') {
                depth--;
                if (depth == 0) {
                    break;
                }
            }
        }
        if (depth != 0) {
            return std::nullopt;
        }
        std::string_view list(code.data() + open + 1, close - open - 1);
        std::vector<KernelParam> params;
        if (!trim(list).empty()) {
            for (const std::string& decl : split_params(list)) {
                params.push_back(parse_param(decl));
            }
        }
        return params;
    }
    return std::nullopt;
}

namespace {

/// Context for expressions that may reference scalar arguments and,
/// optionally, a configuration and the problem size.
class LaunchContext: public EvalContext {
  public:
    LaunchContext(
        const std::vector<KernelArg>* args,
        const Config* config,
        const ProblemSize* problem):
        args_(args),
        config_(config),
        problem_(problem) {}

    std::optional<Value> param(const std::string& name) const override {
        if (config_ != nullptr && config_->contains(name)) {
            return config_->at(name);
        }
        return std::nullopt;
    }

    std::optional<Value> argument(size_t index) const override {
        if (args_ == nullptr || index >= args_->size()) {
            return std::nullopt;
        }
        return (*args_)[index].to_value();
    }

    std::optional<Value> problem_size(size_t axis) const override {
        if (problem_ == nullptr || axis >= 3) {
            return std::nullopt;
        }
        return Value(static_cast<int64_t>((*problem_)[axis]));
    }

  private:
    const std::vector<KernelArg>* args_;
    const Config* config_;
    const ProblemSize* problem_;
};

uint64_t eval_positive(const Expr& expr, const EvalContext& ctx, const char* what) {
    int64_t v = expr.eval(ctx).to_int();
    if (v <= 0) {
        throw Error(
            std::string(what) + " evaluated to non-positive value "
            + std::to_string(v) + " (expression: " + expr.to_string() + ")");
    }
    return static_cast<uint64_t>(v);
}

json::Value exprs3_to_json(const std::array<Expr, 3>& exprs) {
    json::Value out = json::Value::array();
    for (const Expr& e : exprs) {
        out.push_back(e.to_json());
    }
    return out;
}

std::array<Expr, 3> exprs3_from_json(const json::Value& v) {
    std::array<Expr, 3> out {Expr(1), Expr(1), Expr(1)};
    const json::Array& arr = v.as_array();
    for (size_t i = 0; i < arr.size() && i < 3; i++) {
        out[i] = Expr::from_json(arr[i]);
    }
    return out;
}

}  // namespace

json::Value KernelDef::to_json() const {
    json::Value out = json::Value::object();
    out["name"] = name;
    if (!tuning_key.empty()) {
        out["tuning_key"] = tuning_key;
    }
    out["source"] = source.to_json();
    out["space"] = space.to_json();
    out["problem_size"] = exprs3_to_json(problem_size);
    out["block_size"] = exprs3_to_json(block_size);
    if (has_grid_divisors) {
        out["grid_divisors"] = exprs3_to_json(grid_divisors);
    }
    if (has_explicit_grid) {
        out["grid_size"] = exprs3_to_json(grid_size);
    }
    out["shared_memory"] = shared_memory.to_json();
    json::Value targs = json::Value::array();
    for (const Expr& e : template_args) {
        targs.push_back(e.to_json());
    }
    out["template_args"] = std::move(targs);
    json::Value defs = json::Value::array();
    for (const auto& [dname, expr] : defines) {
        json::Value d = json::Value::object();
        d["name"] = dname;
        d["value"] = expr.to_json();
        defs.push_back(std::move(d));
    }
    out["defines"] = std::move(defs);
    json::Value flags = json::Value::array();
    for (const std::string& flag : compiler_flags) {
        flags.push_back(flag);
    }
    out["compiler_flags"] = std::move(flags);
    json::Value outputs = json::Value::array();
    for (size_t index : output_args) {
        outputs.push_back(static_cast<int64_t>(index));
    }
    out["output_args"] = std::move(outputs);
    return out;
}

KernelDef KernelDef::from_json(const json::Value& v) {
    KernelDef def;
    def.name = v["name"].as_string();
    def.tuning_key = v.get_string_or("tuning_key", "");
    def.source = KernelSource::from_json(v["source"]);
    def.space = ConfigSpace::from_json(v["space"]);
    def.problem_size = exprs3_from_json(v["problem_size"]);
    def.block_size = exprs3_from_json(v["block_size"]);
    if (const json::Value* gd = v.find("grid_divisors")) {
        def.grid_divisors = exprs3_from_json(*gd);
        def.has_grid_divisors = true;
    }
    if (const json::Value* gs = v.find("grid_size")) {
        def.grid_size = exprs3_from_json(*gs);
        def.has_explicit_grid = true;
    }
    def.shared_memory = Expr::from_json(v["shared_memory"]);
    for (const json::Value& e : v["template_args"].as_array()) {
        def.template_args.push_back(Expr::from_json(e));
    }
    for (const json::Value& d : v["defines"].as_array()) {
        def.defines.emplace_back(d["name"].as_string(), Expr::from_json(d["value"]));
    }
    if (const json::Value* flags = v.find("compiler_flags")) {
        for (const json::Value& f : flags->as_array()) {
            def.compiler_flags.push_back(f.as_string());
        }
    }
    if (const json::Value* outputs = v.find("output_args")) {
        for (const json::Value& o : outputs->as_array()) {
            def.output_args.push_back(static_cast<size_t>(o.as_int()));
        }
    }
    return def;
}

ProblemSize KernelDef::eval_problem_size(const std::vector<KernelArg>& args) const {
    LaunchContext ctx(&args, nullptr, nullptr);
    ProblemSize out;
    for (size_t axis = 0; axis < 3; axis++) {
        out.dims[axis] = eval_positive(problem_size[axis], ctx, "problem size");
    }
    return out;
}

KernelDef::Geometry KernelDef::eval_geometry(
    const Config& config,
    const std::vector<KernelArg>& args) const {
    Geometry geom;
    geom.problem = eval_problem_size(args);
    LaunchContext ctx(&args, &config, &geom.problem);

    geom.block = sim::Dim3(
        static_cast<uint32_t>(eval_positive(block_size[0], ctx, "block size x")),
        static_cast<uint32_t>(eval_positive(block_size[1], ctx, "block size y")),
        static_cast<uint32_t>(eval_positive(block_size[2], ctx, "block size z")));

    if (has_explicit_grid) {
        geom.grid = sim::Dim3(
            static_cast<uint32_t>(eval_positive(grid_size[0], ctx, "grid size x")),
            static_cast<uint32_t>(eval_positive(grid_size[1], ctx, "grid size y")),
            static_cast<uint32_t>(eval_positive(grid_size[2], ctx, "grid size z")));
    } else {
        uint64_t divisor[3];
        if (has_grid_divisors) {
            divisor[0] = eval_positive(grid_divisors[0], ctx, "grid divisor x");
            divisor[1] = eval_positive(grid_divisors[1], ctx, "grid divisor y");
            divisor[2] = eval_positive(grid_divisors[2], ctx, "grid divisor z");
        } else {
            divisor[0] = geom.block.x;
            divisor[1] = geom.block.y;
            divisor[2] = geom.block.z;
        }
        geom.grid = sim::Dim3(
            static_cast<uint32_t>(sim::div_ceil64(geom.problem.x(), divisor[0])),
            static_cast<uint32_t>(sim::div_ceil64(geom.problem.y(), divisor[1])),
            static_cast<uint32_t>(sim::div_ceil64(geom.problem.z(), divisor[2])));
    }

    int64_t smem = shared_memory.eval(ctx).to_int();
    if (smem < 0) {
        throw Error("shared memory expression evaluated to a negative value");
    }
    geom.shared_mem_bytes = static_cast<uint64_t>(smem);
    return geom;
}

namespace {

/// "kernel 'name' (file.cu): " prefix so every definition-time error names
/// the kernel and the source it belongs to.
std::string definition_context(const KernelDef& def) {
    std::string out = "kernel '" + def.name + "'";
    if (!def.source.file_name().empty()) {
        out += " (" + def.source.file_name() + ")";
    }
    out += ": ";
    return out;
}

}  // namespace

KernelBuilder::KernelBuilder(std::string kernel_name, KernelSource source) {
    if (kernel_name.empty()) {
        throw DefinitionError("kernel name must not be empty");
    }
    def_.name = std::move(kernel_name);
    def_.source = std::move(source);
}

Expr KernelBuilder::tune(std::string name, std::vector<Value> values) {
    try {
        return def_.space.tune(std::move(name), std::move(values));
    } catch (const Error& e) {
        throw DefinitionError(definition_context(def_) + e.what());
    }
}

Expr KernelBuilder::tune(std::string name, std::vector<Value> values, Value default_value) {
    try {
        return def_.space.tune(std::move(name), std::move(values), std::move(default_value));
    } catch (const Error& e) {
        throw DefinitionError(definition_context(def_) + e.what());
    }
}

KernelBuilder& KernelBuilder::restriction(Expr condition) {
    try {
        def_.space.restrict(std::move(condition));
    } catch (const Error& e) {
        throw DefinitionError(definition_context(def_) + e.what());
    }
    return *this;
}

KernelBuilder& KernelBuilder::problem_size(Expr x, Expr y, Expr z) {
    def_.problem_size = {std::move(x), std::move(y), std::move(z)};
    return *this;
}

KernelBuilder& KernelBuilder::block_size(Expr x, Expr y, Expr z) {
    def_.block_size = {std::move(x), std::move(y), std::move(z)};
    return *this;
}

KernelBuilder& KernelBuilder::grid_divisors(Expr x, Expr y, Expr z) {
    def_.grid_divisors = {std::move(x), std::move(y), std::move(z)};
    def_.has_grid_divisors = true;
    return *this;
}

KernelBuilder& KernelBuilder::grid_size(Expr x, Expr y, Expr z) {
    def_.grid_size = {std::move(x), std::move(y), std::move(z)};
    def_.has_explicit_grid = true;
    return *this;
}

KernelBuilder& KernelBuilder::shared_memory(Expr bytes) {
    def_.shared_memory = std::move(bytes);
    return *this;
}

KernelBuilder& KernelBuilder::template_arg(Expr expr) {
    def_.template_args.push_back(std::move(expr));
    return *this;
}

KernelBuilder& KernelBuilder::define(std::string name, Expr value) {
    for (const auto& [existing, expr] : def_.defines) {
        if (existing == name) {
            throw DefinitionError(
                definition_context(def_) + "duplicate preprocessor definition '" + name
                + "'");
        }
    }
    def_.defines.emplace_back(std::move(name), std::move(value));
    return *this;
}

KernelBuilder& KernelBuilder::compiler_flag(std::string flag) {
    def_.compiler_flags.push_back(std::move(flag));
    return *this;
}

KernelBuilder& KernelBuilder::tuning_key(std::string key) {
    def_.tuning_key = std::move(key);
    return *this;
}

KernelBuilder& KernelBuilder::output_arg(size_t index) {
    if (!def_.is_output_arg(index)) {
        def_.output_args.push_back(index);
    }
    return *this;
}

KernelCompiler::Lowered KernelCompiler::lower(
    const KernelDef& def,
    const Config& config,
    const sim::DeviceProperties& device,
    const ProblemSize* problem) {
    if (!def.space.is_valid(config)) {
        throw Error(
            "configuration is not a member of the search space of kernel '" + def.name
            + "': " + config.to_string());
    }

    LaunchContext ctx(nullptr, &config, problem);

    Lowered out;
    out.options.push_back(
        "--gpu-architecture=compute_" + std::to_string(device.compute_capability_major)
        + std::to_string(device.compute_capability_minor));
    // Every tunable parameter is exposed to the kernel as a preprocessor
    // definition (mirroring Kernel Tuner's behavior), followed by explicit
    // definitions from the kernel definition.
    for (const TunableParam& param : def.space.params()) {
        out.options.push_back(
            "-D" + param.name + "=" + config.at(param.name).to_define());
    }
    for (const auto& [name, expr] : def.defines) {
        out.options.push_back("-D" + name + "=" + expr.eval(ctx).to_define());
    }
    for (const std::string& flag : def.compiler_flags) {
        out.options.push_back(flag);
    }

    try {
        out.source = def.source.read();
    } catch (const IoError& e) {
        throw IoError(definition_context(def) + e.what());
    }
    out.file_name = def.source.file_name();

    if (!def.template_args.empty()) {
        std::string expression = def.name + "<";
        for (size_t i = 0; i < def.template_args.size(); i++) {
            if (i > 0) {
                expression += ", ";
            }
            expression += def.template_args[i].eval(ctx).to_define();
        }
        expression += ">";
        out.name_expression = std::move(expression);
    }
    return out;
}

KernelCompiler::Output KernelCompiler::compile_lowered(
    const KernelDef& def,
    const Lowered& lowered) {
    rtc::Program program(def.name, lowered.source, lowered.file_name);
    if (!lowered.name_expression.empty()) {
        program.add_name_expression(lowered.name_expression);
    }

    rtc::CompileResult compiled = program.compile(lowered.options);

    Output out;
    out.image = std::move(compiled.images.front());
    out.compile_seconds = compiled.compile_seconds;
    out.log = std::move(compiled.log);
    return out;
}

KernelCompiler::Output KernelCompiler::compile(
    const KernelDef& def,
    const Config& config,
    const sim::DeviceProperties& device,
    const ProblemSize* problem) {
    return compile_lowered(def, lower(def, config, device, problem));
}

}  // namespace kl::core
