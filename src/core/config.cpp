#include "core/config.hpp"

#include <algorithm>

#include "util/errors.hpp"

namespace kl::core {

json::Value TunableParam::to_json() const {
    json::Value out = json::Value::object();
    out["name"] = name;
    json::Value vals = json::Value::array();
    for (const Value& v : values) {
        vals.push_back(v.to_json());
    }
    out["values"] = std::move(vals);
    out["default"] = default_value.to_json();
    return out;
}

TunableParam TunableParam::from_json(const json::Value& v) {
    TunableParam param;
    param.name = v["name"].as_string();
    for (const json::Value& item : v["values"].as_array()) {
        param.values.push_back(Value::from_json(item));
    }
    param.default_value = Value::from_json(v["default"]);
    if (param.values.empty()) {
        throw Error("tunable parameter '" + param.name + "' has no values");
    }
    return param;
}

const Value& Config::at(const std::string& name) const {
    auto it = values_.find(name);
    if (it == values_.end()) {
        throw Error("configuration has no parameter '" + name + "'");
    }
    return it->second;
}

uint64_t Config::digest() const {
    uint64_t hash = 0x4CF5'AD43'2745'937Full;
    for (const auto& [name, value] : values_) {
        hash = hash_combine(hash, fnv1a(name));
        hash = hash_combine(hash, fnv1a(value.to_string()));
    }
    return hash;
}

std::string Config::to_string() const {
    std::string out;
    for (const auto& [name, value] : values_) {
        if (!out.empty()) {
            out += ", ";
        }
        out += name + "=" + value.to_string();
    }
    return out;
}

json::Value Config::to_json() const {
    json::Value out = json::Value::object();
    for (const auto& [name, value] : values_) {
        out[name] = value.to_json();
    }
    return out;
}

Config Config::from_json(const json::Value& v) {
    Config config;
    for (const auto& [name, value] : v.as_object()) {
        config.set(name, Value::from_json(value));
    }
    return config;
}

Expr ConfigSpace::tune(std::string name, std::vector<Value> values) {
    if (values.empty()) {
        throw Error("tunable parameter '" + name + "' needs at least one value");
    }
    Value default_value = values.front();
    return tune(std::move(name), std::move(values), std::move(default_value));
}

Expr ConfigSpace::tune(std::string name, std::vector<Value> values, Value default_value) {
    TunableParam param;
    param.name = std::move(name);
    param.values = std::move(values);
    param.default_value = std::move(default_value);
    std::string param_name = param.name;
    add(std::move(param));
    return Expr::param(std::move(param_name));
}

void ConfigSpace::add(TunableParam param) {
    if (param.values.empty()) {
        throw Error("tunable parameter '" + param.name + "' needs at least one value");
    }
    if (contains(param.name)) {
        throw Error("duplicate tunable parameter '" + param.name + "'");
    }
    if (std::find(param.values.begin(), param.values.end(), param.default_value)
        == param.values.end()) {
        throw Error(
            "default value " + param.default_value.to_string() + " of parameter '"
            + param.name + "' is not in its value list");
    }
    params_.push_back(std::move(param));
}

void ConfigSpace::restrict(Expr condition) {
    std::set<std::string> referenced;
    condition.collect_params(referenced);
    for (const std::string& name : referenced) {
        if (!contains(name)) {
            throw Error("restriction references unknown parameter '" + name + "'");
        }
    }
    restrictions_.push_back(std::move(condition));
}

bool ConfigSpace::contains(const std::string& name) const {
    for (const TunableParam& param : params_) {
        if (param.name == name) {
            return true;
        }
    }
    return false;
}

const TunableParam& ConfigSpace::at(const std::string& name) const {
    for (const TunableParam& param : params_) {
        if (param.name == name) {
            return param;
        }
    }
    throw Error("no tunable parameter named '" + name + "'");
}

uint64_t ConfigSpace::cardinality() const {
    uint64_t total = 1;
    for (const TunableParam& param : params_) {
        total *= static_cast<uint64_t>(param.values.size());
    }
    return total;
}

Config ConfigSpace::default_config() const {
    Config config;
    for (const TunableParam& param : params_) {
        config.set(param.name, param.default_value);
    }
    return config;
}

Config ConfigSpace::config_at(uint64_t index) const {
    if (index >= cardinality()) {
        throw Error("configuration index out of range");
    }
    Config config;
    for (const TunableParam& param : params_) {
        uint64_t radix = param.values.size();
        config.set(param.name, param.values[static_cast<size_t>(index % radix)]);
        index /= radix;
    }
    return config;
}

bool ConfigSpace::is_valid(const Config& config) const {
    if (config.size() != params_.size()) {
        return false;
    }
    for (const TunableParam& param : params_) {
        if (!config.contains(param.name)) {
            return false;
        }
        const Value& v = config.at(param.name);
        if (std::find(param.values.begin(), param.values.end(), v) == param.values.end()) {
            return false;
        }
    }
    return satisfies_restrictions(config);
}

bool ConfigSpace::satisfies_restrictions(const Config& config) const {
    ConfigContext ctx(config);
    for (const Expr& restriction : restrictions_) {
        if (!restriction.eval(ctx).truthy()) {
            return false;
        }
    }
    return true;
}

std::optional<Config> ConfigSpace::random_config(Rng& rng, int max_attempts) const {
    uint64_t total = cardinality();
    if (total == 0) {
        return std::nullopt;
    }
    for (int attempt = 0; attempt < max_attempts; attempt++) {
        Config config = config_at(rng.next_below(total));
        if (satisfies_restrictions(config)) {
            return config;
        }
    }
    return std::nullopt;
}

std::vector<Config> ConfigSpace::enumerate_valid(uint64_t limit) const {
    std::vector<Config> out;
    uint64_t total = cardinality();
    for (uint64_t i = 0; i < total && out.size() < limit; i++) {
        Config config = config_at(i);
        if (satisfies_restrictions(config)) {
            out.push_back(std::move(config));
        }
    }
    return out;
}

json::Value ConfigSpace::to_json() const {
    json::Value out = json::Value::object();
    json::Value params = json::Value::array();
    for (const TunableParam& param : params_) {
        params.push_back(param.to_json());
    }
    out["parameters"] = std::move(params);
    json::Value restrictions = json::Value::array();
    for (const Expr& restriction : restrictions_) {
        restrictions.push_back(restriction.to_json());
    }
    out["restrictions"] = std::move(restrictions);
    return out;
}

ConfigSpace ConfigSpace::from_json(const json::Value& v) {
    ConfigSpace space;
    for (const json::Value& param : v["parameters"].as_array()) {
        space.add(TunableParam::from_json(param));
    }
    if (const json::Value* restrictions = v.find("restrictions")) {
        for (const json::Value& restriction : restrictions->as_array()) {
            space.restrict(Expr::from_json(restriction));
        }
    }
    return space;
}

}  // namespace kl::core
