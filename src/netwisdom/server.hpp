#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/wisdom.hpp"
#include "netwisdom/socket.hpp"
#include "util/json.hpp"

namespace kl::netwisdom {

/// Aggregated wisdom held by the daemon: one core::WisdomFile per kernel,
/// but with the *fleet* conflict-resolution policy layered on top of
/// uploads (docs/DISTRIBUTED.md#consistency):
///
///   per (device name, problem size):
///     newest provenance date wins (ISO-8601, lexicographic),
///     a date tie goes to the better (lower) measured time,
///     the losing record's provenance is kept in the winner's
///     "supersedes" list (capped) so tuning history survives,
///     a losing *upload* is rejected with a reason, not silently eaten.
///
/// Lookups reuse core::WisdomFile::select, so a network answer is
/// byte-for-byte what a local wisdom file would have selected (§4.5).
class WisdomStore {
  public:
    /// `dir` empty = in-memory only; otherwise load every *.wisdom.json at
    /// construction and save the kernel's file after each accepted put.
    explicit WisdomStore(std::string dir);

    struct PutResult {
        bool accepted = false;
        std::string reason;  ///< why not, when !accepted
    };
    PutResult put(const std::string& kernel_name, const json::Value& record_json);

    /// Selection over the aggregate; json reply payload for WisdomReply.
    json::Value get(
        const std::string& kernel_name,
        const std::string& device_name,
        const std::string& device_arch,
        const json::Value& problem_json) const;

    size_t kernel_count() const;
    size_t record_count() const;

  private:
    /// Persists one kernel's aggregate to dir_ (no-op when in-memory).
    /// Caller holds mutex_.
    void save_locked(const std::string& kernel_name);

    std::string dir_;
    mutable std::mutex mutex_;
    /// Per kernel, at most one record per (device name, problem size).
    std::map<std::string, std::vector<core::WisdomRecord>> kernels_;
};

/// Compiled-instance artifacts, keyed by rtccache entry id. Uploads are
/// validated with rtccache::validate_entry_text before acceptance — the
/// daemon never serves bytes a client would quarantine. `dir` empty =
/// in-memory only; otherwise entries persist as `<id>.json` files (the
/// rtccache directory layout, so a cache dir can seed a daemon directly).
class ArtifactStore {
  public:
    explicit ArtifactStore(std::string dir);

    struct PutResult {
        bool accepted = false;
        std::string reason;
    };
    PutResult put(const std::string& id, const std::string& entry_text);

    std::optional<std::string> get(const std::string& id) const;
    std::vector<std::string> ids() const;
    size_t count() const;
    uint64_t bytes() const;

  private:
    std::string dir_;
    mutable std::mutex mutex_;
    std::map<std::string, std::string> entries_;
};

struct ServerOptions {
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0;           ///< 0 = ephemeral; Server::port() reports it
    std::string artifact_dir;    ///< empty = in-memory artifacts
    std::string wisdom_dir;      ///< empty = in-memory wisdom
    bool verbose = false;        ///< log one line per request to stderr
};

/// The kl-wisdomd daemon core: a listener thread accepting connections and
/// one session thread per connection, each speaking the framed protocol.
/// All threads poll `running_` on short timeouts, so stop() converges
/// quickly and joins everything — no detached threads, TSan-clean.
///
/// Protocol errors answer with one Error frame (code "version" for a
/// version-mismatched peer, "bad-request" otherwise) and close the
/// connection; undecodable byte streams are dropped without a reply.
class Server {
  public:
    explicit Server(ServerOptions options);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Binds and starts the accept loop. Throws kl::Error when the
    /// address/port cannot be bound.
    void start();

    /// Stops accepting, joins every session, closes the listener.
    /// Idempotent.
    void stop();

    bool running() const noexcept {
        return running_.load(std::memory_order_relaxed);
    }

    /// Bound port (valid after start()).
    uint16_t port() const noexcept {
        return port_;
    }

    /// Server-side counters + store sizes; also the StatsReply payload.
    json::Value stats() const;

    WisdomStore& wisdom() {
        return wisdom_;
    }
    ArtifactStore& artifacts() {
        return artifacts_;
    }

  private:
    void accept_loop();
    void session(Socket conn);
    json::Value handle(MsgType type, const json::Value& payload, MsgType& reply_type);
    void reap_finished_sessions();

    ServerOptions options_;
    WisdomStore wisdom_;
    ArtifactStore artifacts_;

    Socket listener_;
    uint16_t port_ = 0;
    std::atomic<bool> running_ {false};
    std::thread accept_thread_;

    struct SessionSlot {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> done;
    };
    mutable std::mutex sessions_mutex_;
    std::vector<SessionSlot> sessions_;

    mutable std::mutex counters_mutex_;
    std::map<std::string, uint64_t> request_counts_;
    uint64_t protocol_errors_ = 0;
    uint64_t connections_ = 0;
};

}  // namespace kl::netwisdom
