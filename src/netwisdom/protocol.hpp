#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/json.hpp"

namespace kl::netwisdom {

/// Version of the wire protocol spoken by kl-wisdomd and the in-library
/// client. A peer announcing any other version is answered with one Error
/// frame and disconnected; the client treats that as a miss (fail-open),
/// never as a failed launch. Bump on any incompatible frame or payload
/// change (docs/DISTRIBUTED.md#versioning).
inline constexpr uint8_t kProtocolVersion = 1;

/// First four bytes of every frame. Rejecting foreign bytes early is what
/// keeps a port scanner or a mistargeted HTTP client from tying up a
/// session thread.
inline constexpr char kMagic[4] = {'K', 'L', 'W', 'P'};

/// Upper bound on one frame's payload. Larger length fields are treated as
/// garbage (the connection is dropped), so a corrupt length can never make
/// a peer try to allocate gigabytes.
inline constexpr uint32_t kMaxPayloadBytes = 64u << 20;

/// Fixed 12-byte frame header; payload (JSON, UTF-8) follows immediately.
///
///   offset  size  field
///   0       4     magic "KLWP"
///   4       1     protocol version (kProtocolVersion)
///   5       1     message type (MsgType)
///   6       2     reserved, must be 0
///   8       4     payload byte count, little-endian
inline constexpr size_t kHeaderBytes = 12;

/// Message types. Requests are < 0x80; every reply is request | 0x80.
/// Error (0xFF) may answer any request.
enum class MsgType : uint8_t {
    Ping = 0x01,          ///< {} — liveness probe
    WisdomGet = 0x02,     ///< {kernel, device_name, device_arch, problem}
    WisdomPut = 0x03,     ///< {kernel, record} — one tuning result
    ArtifactGet = 0x04,   ///< {id} — "klc-<16hex>" rtccache entry id
    ArtifactPut = 0x05,   ///< {id, entry} — entry is the full entry text
    Stats = 0x06,         ///< {} — server counters and store sizes
    ArtifactList = 0x07,  ///< {} — ids of every artifact held

    Pong = 0x81,           ///< {version}
    WisdomReply = 0x82,    ///< {found, config?, match?, time_ms?, provenance?}
    WisdomPutReply = 0x83, ///< {accepted, reason?}
    ArtifactReply = 0x84,  ///< {found, entry?}
    ArtifactPutReply = 0x85,  ///< {accepted, reason?}
    StatsReply = 0x86,     ///< {artifacts, kernels, records, requests, ...}
    ArtifactListReply = 0x87,  ///< {ids: [...]}

    Error = 0xFF,  ///< {code, message}; code "version" forces disconnect
};

const char* msg_type_name(MsgType type) noexcept;

/// One decoded frame.
struct Frame {
    MsgType type = MsgType::Error;
    json::Value payload;
};

/// Serializes a frame: header + compact JSON payload.
std::string encode_frame(MsgType type, const json::Value& payload);

/// Outcome of decoding a header. Anything but Ok means the byte stream is
/// not (or no longer) speaking this protocol; the connection must be
/// dropped — there is no way to resynchronize a length-framed stream.
enum class DecodeStatus {
    Ok,
    BadMagic,        ///< first four bytes are not "KLWP"
    BadVersion,      ///< version byte != kProtocolVersion
    BadReserved,     ///< reserved bytes are not zero
    PayloadTooLarge, ///< length field exceeds kMaxPayloadBytes
};

const char* decode_status_name(DecodeStatus status) noexcept;

/// Parsed header fields.
struct Header {
    uint8_t version = 0;
    MsgType type = MsgType::Error;
    uint32_t payload_bytes = 0;
};

/// Validates and unpacks the fixed header (`data` must hold kHeaderBytes).
DecodeStatus decode_header(const void* data, Header& out);

/// Parses a payload as JSON. Throws kl::Error with context on malformed
/// bytes (a truncated or garbage payload after a valid header).
json::Value decode_payload(const std::string& bytes);

/// Splits "host:port". Throws kl::Error on malformed input or a port
/// outside [1, 65535].
struct HostPort {
    std::string host;
    uint16_t port = 0;
};
HostPort parse_host_port(const std::string& text);

}  // namespace kl::netwisdom
