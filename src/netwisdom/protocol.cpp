#include "netwisdom/protocol.hpp"

#include <cstring>

#include "util/errors.hpp"
#include "util/strings.hpp"

namespace kl::netwisdom {

const char* msg_type_name(MsgType type) noexcept {
    switch (type) {
        case MsgType::Ping:
            return "ping";
        case MsgType::WisdomGet:
            return "wisdom-get";
        case MsgType::WisdomPut:
            return "wisdom-put";
        case MsgType::ArtifactGet:
            return "artifact-get";
        case MsgType::ArtifactPut:
            return "artifact-put";
        case MsgType::Stats:
            return "stats";
        case MsgType::ArtifactList:
            return "artifact-list";
        case MsgType::Pong:
            return "pong";
        case MsgType::WisdomReply:
            return "wisdom-reply";
        case MsgType::WisdomPutReply:
            return "wisdom-put-reply";
        case MsgType::ArtifactReply:
            return "artifact-reply";
        case MsgType::ArtifactPutReply:
            return "artifact-put-reply";
        case MsgType::StatsReply:
            return "stats-reply";
        case MsgType::ArtifactListReply:
            return "artifact-list-reply";
        case MsgType::Error:
            return "error";
    }
    return "?";
}

const char* decode_status_name(DecodeStatus status) noexcept {
    switch (status) {
        case DecodeStatus::Ok:
            return "ok";
        case DecodeStatus::BadMagic:
            return "bad magic";
        case DecodeStatus::BadVersion:
            return "protocol version mismatch";
        case DecodeStatus::BadReserved:
            return "nonzero reserved bytes";
        case DecodeStatus::PayloadTooLarge:
            return "payload length over limit";
    }
    return "?";
}

std::string encode_frame(MsgType type, const json::Value& payload) {
    const std::string body = payload.dump();
    if (body.size() > kMaxPayloadBytes) {
        throw Error("netwisdom frame payload exceeds the protocol limit");
    }
    std::string out;
    out.reserve(kHeaderBytes + body.size());
    out.append(kMagic, sizeof kMagic);
    out.push_back(static_cast<char>(kProtocolVersion));
    out.push_back(static_cast<char>(type));
    out.push_back(0);
    out.push_back(0);
    const uint32_t n = static_cast<uint32_t>(body.size());
    for (int shift = 0; shift < 32; shift += 8) {
        out.push_back(static_cast<char>((n >> shift) & 0xFF));
    }
    out.append(body);
    return out;
}

DecodeStatus decode_header(const void* data, Header& out) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    if (std::memcmp(bytes, kMagic, sizeof kMagic) != 0) {
        return DecodeStatus::BadMagic;
    }
    out.version = bytes[4];
    out.type = static_cast<MsgType>(bytes[5]);
    if (out.version != kProtocolVersion) {
        return DecodeStatus::BadVersion;
    }
    if (bytes[6] != 0 || bytes[7] != 0) {
        return DecodeStatus::BadReserved;
    }
    out.payload_bytes = static_cast<uint32_t>(bytes[8]) | (static_cast<uint32_t>(bytes[9]) << 8)
        | (static_cast<uint32_t>(bytes[10]) << 16) | (static_cast<uint32_t>(bytes[11]) << 24);
    if (out.payload_bytes > kMaxPayloadBytes) {
        return DecodeStatus::PayloadTooLarge;
    }
    return DecodeStatus::Ok;
}

json::Value decode_payload(const std::string& bytes) {
    try {
        return json::parse(bytes);
    } catch (const Error& e) {
        throw Error(std::string("netwisdom frame payload is not valid JSON: ") + e.what());
    }
}

HostPort parse_host_port(const std::string& text) {
    const size_t colon = text.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= text.size()) {
        throw Error(
            "invalid KERNEL_LAUNCHER_WISDOM_SERVER value '" + text
            + "' (expected host:port)");
    }
    HostPort out;
    out.host = trim(text.substr(0, colon));
    const std::string port_text(trim(text.substr(colon + 1)));
    unsigned long port = 0;
    try {
        size_t used = 0;
        port = std::stoul(port_text, &used);
        if (used != port_text.size()) {
            throw std::invalid_argument(port_text);
        }
    } catch (const std::exception&) {
        throw Error(
            "invalid KERNEL_LAUNCHER_WISDOM_SERVER value '" + text
            + "' (port is not a number)");
    }
    if (port == 0 || port > 65535) {
        throw Error(
            "invalid KERNEL_LAUNCHER_WISDOM_SERVER value '" + text
            + "' (port out of range)");
    }
    out.port = static_cast<uint16_t>(port);
    return out;
}

}  // namespace kl::netwisdom
