#include "netwisdom/client.hpp"

#include <chrono>
#include <map>

#include "trace/trace.hpp"
#include "util/errors.hpp"
#include "util/fs.hpp"

namespace kl::netwisdom {

namespace {

double monotonic_seconds() {
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

int env_ms(const char* name, int fallback) {
    const auto text = get_env(name);
    if (!text) {
        return fallback;
    }
    try {
        size_t used = 0;
        const int value = std::stoi(*text, &used);
        if (used != text->size() || value <= 0) {
            throw std::invalid_argument(*text);
        }
        return value;
    } catch (const std::exception&) {
        throw Error(
            std::string("invalid ") + name + " value '" + *text
            + "' (expected a positive integer of milliseconds)");
    }
}

void bump(const char* name) {
    if (trace::counters_enabled()) {
        trace::counter(name).add();
    }
}

}  // namespace

Settings Settings::from_env() {
    Settings out;
    out.server = get_env("KERNEL_LAUNCHER_WISDOM_SERVER").value_or("");
    if (!out.server.empty()) {
        parse_host_port(out.server);  // fail loudly on a typo, right here
    }
    out.io_timeout_ms = env_ms("KERNEL_LAUNCHER_NET_TIMEOUT_MS", out.io_timeout_ms);
    out.connect_timeout_ms = std::min(out.connect_timeout_ms, out.io_timeout_ms);
    out.retry_after_ms = env_ms("KERNEL_LAUNCHER_NET_RETRY_MS", out.retry_after_ms);
    return out;
}

double net_read_seconds(uint64_t bytes) noexcept {
    return 1.5e-3 + static_cast<double>(bytes) / 250e6;
}

Client::Client(Settings settings): settings_(std::move(settings)) {
    if (!settings_.enabled()) {
        return;
    }
    try {
        const HostPort hp = parse_host_port(settings_.server);
        host_ = hp.host;
        port_ = hp.port;
        address_ok_ = true;
    } catch (const Error&) {
        // A malformed address behaves like an unreachable server: fail-open.
        address_ok_ = false;
    }
}

Frame Client::exchange_or_throw(MsgType type, const json::Value& payload) {
    const double io_timeout = settings_.io_timeout_ms * 1e-3;
    for (int attempt = 0; attempt < 2; ++attempt) {
        if (!conn_.valid()) {
            conn_ = Socket::connect(host_, port_, settings_.connect_timeout_ms * 1e-3);
            stats_.connects += 1;
            bump("kl.net.connect");
        }
        const bool fresh = attempt > 0;
        try {
            conn_.send_frame(type, payload, io_timeout);
            return conn_.recv_frame(io_timeout);
        } catch (const Socket::TimeoutError&) {
            conn_.close();
            throw;
        } catch (const Error&) {
            conn_.close();
            // A stale persistent connection (daemon restarted, idle reset)
            // surfaces as a send/recv error on the first attempt; retry once
            // on a fresh connection. Errors on the fresh one are real.
            if (fresh) {
                throw;
            }
        }
    }
    throw Error("netwisdom exchange failed");  // unreachable
}

std::optional<Frame>
Client::request(MsgType type, const json::Value& payload, MsgType expected_reply) {
    if (!settings_.enabled() || !address_ok_) {
        return std::nullopt;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (monotonic_seconds() < skip_until_) {
        stats_.breaker_skips += 1;
        bump("kl.net.breaker.skipped");
        return std::nullopt;
    }
    stats_.requests += 1;
    bump("kl.net.request");
    try {
        Frame reply = exchange_or_throw(type, payload);
        if (reply.type == MsgType::Error) {
            // The daemon answered but refused us (e.g. version mismatch).
            // The stream itself is intact, but an Error frame with code
            // "version" means it will refuse everything — treat like any
            // failure and open the breaker.
            conn_.close();
            note_failure(/*timed_out=*/false);
            return std::nullopt;
        }
        if (reply.type != expected_reply) {
            conn_.close();
            note_failure(/*timed_out=*/false);
            return std::nullopt;
        }
        skip_until_ = 0;
        return reply;
    } catch (const Socket::TimeoutError&) {
        note_failure(/*timed_out=*/true);
        return std::nullopt;
    } catch (const Error&) {
        note_failure(/*timed_out=*/false);
        return std::nullopt;
    }
}

void Client::note_failure(bool timed_out) {
    stats_.errors += 1;
    bump("kl.net.error");
    if (timed_out) {
        stats_.timeouts += 1;
        bump("kl.net.timeout");
    }
    skip_until_ = monotonic_seconds() + settings_.retry_after_ms * 1e-3;
}

bool Client::ping() {
    const auto reply = request(MsgType::Ping, json::Value::object(), MsgType::Pong);
    return reply.has_value();
}

std::optional<WisdomAnswer> Client::wisdom_get(
    const std::string& kernel_name,
    const std::string& device_name,
    const std::string& device_arch,
    const json::Value& problem) {
    json::Value payload = json::Value::object();
    payload["kernel"] = kernel_name;
    payload["device_name"] = device_name;
    payload["device_arch"] = device_arch;
    payload["problem"] = problem;
    const auto reply = request(MsgType::WisdomGet, payload, MsgType::WisdomReply);
    if (!reply || !reply->payload.get_bool_or("found", false)) {
        return std::nullopt;
    }
    try {
        WisdomAnswer answer;
        answer.config = reply->payload["config"];
        answer.match = reply->payload.get_string_or("match", "full");
        answer.time_seconds = reply->payload.get_double_or("time_ms", 0.0) * 1e-3;
        if (const json::Value* prov = reply->payload.find("provenance")) {
            answer.provenance = *prov;
        }
        return answer;
    } catch (const Error&) {
        return std::nullopt;  // malformed reply — treat as a miss
    }
}

bool Client::wisdom_put(const std::string& kernel_name, const json::Value& record) {
    json::Value payload = json::Value::object();
    payload["kernel"] = kernel_name;
    payload["record"] = record;
    const auto reply = request(MsgType::WisdomPut, payload, MsgType::WisdomPutReply);
    return reply && reply->payload.get_bool_or("accepted", false);
}

std::optional<std::string> Client::artifact_get(const std::string& id) {
    json::Value payload = json::Value::object();
    payload["id"] = id;
    const auto reply = request(MsgType::ArtifactGet, payload, MsgType::ArtifactReply);
    if (!reply || !reply->payload.get_bool_or("found", false)) {
        return std::nullopt;
    }
    std::string entry = reply->payload.get_string_or("entry", "");
    if (entry.empty()) {
        return std::nullopt;
    }
    return entry;
}

bool Client::artifact_put(const std::string& id, const std::string& entry_text) {
    json::Value payload = json::Value::object();
    payload["id"] = id;
    payload["entry"] = entry_text;
    const auto reply = request(MsgType::ArtifactPut, payload, MsgType::ArtifactPutReply);
    return reply && reply->payload.get_bool_or("accepted", false);
}

std::optional<std::vector<std::string>> Client::artifact_list() {
    const auto reply
        = request(MsgType::ArtifactList, json::Value::object(), MsgType::ArtifactListReply);
    if (!reply) {
        return std::nullopt;
    }
    std::vector<std::string> ids;
    if (const json::Value* list = reply->payload.find("ids")) {
        if (list->is_array()) {
            for (const auto& id : list->as_array()) {
                if (id.is_string()) {
                    ids.push_back(id.as_string());
                }
            }
        }
    }
    return ids;
}

std::optional<json::Value> Client::server_stats() {
    const auto reply = request(MsgType::Stats, json::Value::object(), MsgType::StatsReply);
    if (!reply) {
        return std::nullopt;
    }
    return reply->payload;
}

ClientStats Client::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void Client::reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    conn_.close();
    skip_until_ = 0;
}

std::shared_ptr<Client> client_for(const Settings& settings) {
    if (!settings.enabled()) {
        return nullptr;
    }
    static std::mutex registry_mutex;
    static std::map<std::string, std::shared_ptr<Client>>* registry
        = new std::map<std::string, std::shared_ptr<Client>>();  // leaked: outlives all users
    std::lock_guard<std::mutex> lock(registry_mutex);
    auto it = registry->find(settings.server);
    if (it != registry->end()) {
        return it->second;
    }
    auto client = std::make_shared<Client>(settings);
    registry->emplace(settings.server, client);
    return client;
}

}  // namespace kl::netwisdom
