#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "netwisdom/protocol.hpp"

namespace kl::netwisdom {

/// RAII wrapper over one TCP socket file descriptor with timeout-bounded,
/// poll-based I/O. Everything the client and daemon do on the wire goes
/// through this type, so there is exactly one place that handles partial
/// reads/writes, EINTR, timeouts and peer resets.
///
/// All errors surface as kl::Error; a timeout is a TimeoutError so callers
/// can count it separately. Instances are movable, not copyable, and NOT
/// thread-safe — each session/connection owns its socket.
class Socket {
  public:
    /// A deadline expired before the operation completed.
    struct TimeoutError: Error {
        using Error::Error;
    };
    /// The peer closed the connection cleanly at a frame boundary.
    struct ClosedError: Error {
        using Error::Error;
    };

    Socket() = default;
    explicit Socket(int fd): fd_(fd) {}
    ~Socket();

    Socket(Socket&& other) noexcept;
    Socket& operator=(Socket&& other) noexcept;
    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;

    bool valid() const noexcept {
        return fd_ >= 0;
    }
    int fd() const noexcept {
        return fd_;
    }

    /// Closes the descriptor (idempotent).
    void close() noexcept;

    /// Half-closes the write side so the peer sees EOF; used by clean
    /// client shutdown.
    void shutdown_write() noexcept;

    /// Connects to host:port with a bounded, non-blocking connect. Throws
    /// TimeoutError when the deadline passes, kl::Error on refusal or
    /// resolution failure. The returned socket is blocking-mode with
    /// TCP_NODELAY set (the protocol is small request/response frames).
    static Socket connect(const std::string& host, uint16_t port, double timeout_seconds);

    /// Creates a listening socket bound to address:port (port 0 picks an
    /// ephemeral port; bound_port() reports it). Throws kl::Error.
    static Socket listen(const std::string& address, uint16_t port, int backlog = 64);

    /// Port this socket is bound to.
    uint16_t bound_port() const;

    /// Accepts one connection, waiting at most timeout_seconds. Returns
    /// nullopt on timeout (so accept loops can poll a shutdown flag);
    /// throws kl::Error when the listener was closed.
    std::optional<Socket> accept(double timeout_seconds);

    /// Writes the whole buffer or throws (TimeoutError / kl::Error).
    void send_all(const void* data, size_t size, double timeout_seconds);

    /// Reads exactly `size` bytes or throws. A clean EOF before the first
    /// byte is ClosedError; EOF mid-buffer is a plain Error (truncation).
    void recv_exact(void* data, size_t size, double timeout_seconds);

    /// Sends one protocol frame.
    void send_frame(MsgType type, const json::Value& payload, double timeout_seconds);

    /// Receives one protocol frame. Framing violations (bad magic, version
    /// mismatch, oversized length) throw kl::Error carrying the
    /// decode_status_name; the stream cannot be resynchronized after any
    /// of them. ClosedError when the peer hung up between frames.
    Frame recv_frame(double timeout_seconds);

  private:
    int fd_ = -1;
};

}  // namespace kl::netwisdom
