#include "netwisdom/socket.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

#include "util/errors.hpp"

namespace kl::netwisdom {

namespace {

double monotonic_seconds() {
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

std::string errno_message(const std::string& what) {
    return what + ": " + std::string(strerror(errno));
}

/// Waits for readability/writability until the absolute deadline. Returns
/// false on timeout; throws on poll failure.
bool wait_for(int fd, short events, double deadline) {
    for (;;) {
        const double remaining = deadline - monotonic_seconds();
        if (remaining <= 0) {
            return false;
        }
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = events;
        pfd.revents = 0;
        const int timeout_ms = static_cast<int>(remaining * 1e3) + 1;
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc > 0) {
            return true;  // readable/writable — or an error the read will surface
        }
        if (rc == 0) {
            return false;
        }
        if (errno == EINTR) {
            continue;
        }
        throw Error(errno_message("netwisdom poll failed"));
    }
}

void set_nodelay(int fd) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void set_nonblocking(int fd, bool enabled) {
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0) {
        return;
    }
    if (enabled) {
        flags |= O_NONBLOCK;
    } else {
        flags &= ~O_NONBLOCK;
    }
    ::fcntl(fd, F_SETFL, flags);
}

}  // namespace

Socket::~Socket() {
    close();
}

Socket::Socket(Socket&& other) noexcept: fd_(other.fd_) {
    other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void Socket::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void Socket::shutdown_write() noexcept {
    if (fd_ >= 0) {
        ::shutdown(fd_, SHUT_WR);
    }
}

Socket Socket::connect(const std::string& host, uint16_t port, double timeout_seconds) {
    struct addrinfo hints;
    memset(&hints, 0, sizeof hints);
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo* results = nullptr;
    const std::string port_text = std::to_string(port);
    const int gai = ::getaddrinfo(host.c_str(), port_text.c_str(), &hints, &results);
    if (gai != 0 || results == nullptr) {
        throw Error(
            "netwisdom cannot resolve '" + host + "': " + std::string(gai_strerror(gai)));
    }

    const double deadline = monotonic_seconds() + timeout_seconds;
    std::string last_error = "no addresses";
    for (struct addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
        int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_error = errno_message("socket");
            continue;
        }
        Socket sock(fd);
        set_nonblocking(fd, true);
        int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
        if (rc != 0 && errno == EINPROGRESS) {
            if (!wait_for(fd, POLLOUT, deadline)) {
                ::freeaddrinfo(results);
                throw TimeoutError(
                    "netwisdom connect to " + host + ":" + port_text + " timed out");
            }
            int err = 0;
            socklen_t len = sizeof err;
            ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
            rc = err == 0 ? 0 : -1;
            errno = err;
        }
        if (rc == 0) {
            set_nonblocking(fd, false);
            set_nodelay(fd);
            ::freeaddrinfo(results);
            return sock;
        }
        last_error = errno_message("connect");
    }
    ::freeaddrinfo(results);
    throw Error("netwisdom connect to " + host + ":" + port_text + " failed: " + last_error);
}

Socket Socket::listen(const std::string& address, uint16_t port, int backlog) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        throw Error(errno_message("netwisdom listen socket"));
    }
    Socket sock(fd);
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    struct sockaddr_in addr;
    memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
        throw Error("netwisdom cannot parse bind address '" + address + "'");
    }
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) != 0) {
        throw Error(errno_message("netwisdom bind to " + address + ":" + std::to_string(port)));
    }
    if (::listen(fd, backlog) != 0) {
        throw Error(errno_message("netwisdom listen"));
    }
    return sock;
}

uint16_t Socket::bound_port() const {
    struct sockaddr_in addr;
    socklen_t len = sizeof addr;
    if (::getsockname(fd_, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
        throw Error(errno_message("netwisdom getsockname"));
    }
    return ntohs(addr.sin_port);
}

std::optional<Socket> Socket::accept(double timeout_seconds) {
    const double deadline = monotonic_seconds() + timeout_seconds;
    if (!wait_for(fd_, POLLIN, deadline)) {
        return std::nullopt;
    }
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK
            || errno == ECONNABORTED) {
            return std::nullopt;
        }
        throw Error(errno_message("netwisdom accept"));
    }
    set_nodelay(fd);
    return Socket(fd);
}

void Socket::send_all(const void* data, size_t size, double timeout_seconds) {
    const double deadline = monotonic_seconds() + timeout_seconds;
    const char* cursor = static_cast<const char*>(data);
    size_t remaining = size;
    while (remaining > 0) {
        const ssize_t sent = ::send(fd_, cursor, remaining, MSG_NOSIGNAL);
        if (sent > 0) {
            cursor += sent;
            remaining -= static_cast<size_t>(sent);
            continue;
        }
        if (sent < 0 && errno == EINTR) {
            continue;
        }
        if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            if (!wait_for(fd_, POLLOUT, deadline)) {
                throw TimeoutError("netwisdom send timed out");
            }
            continue;
        }
        throw Error(errno_message("netwisdom send failed"));
    }
}

void Socket::recv_exact(void* data, size_t size, double timeout_seconds) {
    const double deadline = monotonic_seconds() + timeout_seconds;
    char* cursor = static_cast<char*>(data);
    size_t remaining = size;
    while (remaining > 0) {
        if (!wait_for(fd_, POLLIN, deadline)) {
            throw TimeoutError("netwisdom recv timed out");
        }
        const ssize_t got = ::recv(fd_, cursor, remaining, 0);
        if (got > 0) {
            cursor += got;
            remaining -= static_cast<size_t>(got);
            continue;
        }
        if (got == 0) {
            if (remaining == size) {
                throw ClosedError("netwisdom peer closed the connection");
            }
            throw Error("netwisdom peer closed mid-frame (truncated)");
        }
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
            continue;
        }
        throw Error(errno_message("netwisdom recv failed"));
    }
}

void Socket::send_frame(MsgType type, const json::Value& payload, double timeout_seconds) {
    const std::string bytes = encode_frame(type, payload);
    send_all(bytes.data(), bytes.size(), timeout_seconds);
}

Frame Socket::recv_frame(double timeout_seconds) {
    unsigned char header_bytes[kHeaderBytes];
    recv_exact(header_bytes, sizeof header_bytes, timeout_seconds);
    Header header;
    const DecodeStatus status = decode_header(header_bytes, header);
    if (status != DecodeStatus::Ok) {
        throw Error(std::string("netwisdom frame rejected: ") + decode_status_name(status));
    }
    std::string body(header.payload_bytes, '\0');
    if (header.payload_bytes > 0) {
        recv_exact(body.data(), body.size(), timeout_seconds);
    }
    Frame frame;
    frame.type = header.type;
    frame.payload = decode_payload(body);
    return frame;
}

}  // namespace kl::netwisdom
