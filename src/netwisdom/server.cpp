#include "netwisdom/server.hpp"

#include <cstdio>

#include "rtccache/rtccache.hpp"
#include "util/errors.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

namespace kl::netwisdom {

namespace {

constexpr double kPollSeconds = 0.2;   ///< shutdown-flag granularity
constexpr double kIoSeconds = 5.0;     ///< per-frame budget once bytes flow
constexpr size_t kMaxSupersedes = 8;   ///< provenance history kept per record

std::string provenance_date(const json::Value& provenance) {
    if (!provenance.is_object()) {
        return "";
    }
    return provenance.get_string_or("date", "");
}

/// Compact summary of a superseded record's provenance for the history
/// list: enough to audit where a config came from, small enough to cap.
json::Value supersedes_summary(const core::WisdomRecord& record) {
    json::Value out = json::Value::object();
    out["date"] = provenance_date(record.provenance);
    if (record.provenance.is_object()) {
        out["hostname"] = record.provenance.get_string_or("hostname", "");
    }
    out["time_ms"] = record.time_seconds * 1e3;
    return out;
}

bool is_wisdom_file(const std::string& path) {
    return ends_with(path_filename(path), ".wisdom.json");
}

bool is_artifact_file(const std::string& path) {
    const std::string name = path_filename(path);
    return starts_with(name, "klc-") && ends_with(name, ".json");
}

}  // namespace

// ---- WisdomStore ----

WisdomStore::WisdomStore(std::string dir): dir_(std::move(dir)) {
    if (dir_.empty()) {
        return;
    }
    create_directories(dir_);
    for (const std::string& path : list_directory(dir_)) {
        if (!is_wisdom_file(path)) {
            continue;
        }
        const std::string name = path_filename(path);
        const std::string kernel = name.substr(0, name.size() - 12);  // ".wisdom.json"
        try {
            core::WisdomFile file = core::WisdomFile::load(path, kernel);
            kernels_[kernel] = file.records();
        } catch (const Error&) {
            // A damaged file on disk must not keep the daemon from serving
            // the rest; it will be overwritten by the next accepted put.
        }
    }
}

WisdomStore::PutResult WisdomStore::put(
    const std::string& kernel_name,
    const json::Value& record_json) {
    core::WisdomRecord record;
    try {
        record = core::WisdomRecord::from_json(record_json);
    } catch (const Error& e) {
        return {false, std::string("malformed record: ") + e.what()};
    }
    if (kernel_name.empty()) {
        return {false, "missing kernel name"};
    }
    if (!record.provenance.is_object()) {
        record.provenance = json::Value::object();
    }

    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<core::WisdomRecord>& records = kernels_[kernel_name];
    for (core::WisdomRecord& existing : records) {
        if (existing.device_name != record.device_name
            || existing.problem_size != record.problem_size) {
            continue;
        }
        const std::string old_date = provenance_date(existing.provenance);
        const std::string new_date = provenance_date(record.provenance);
        if (new_date < old_date) {
            return {
                false,
                "stale: an upload dated " + old_date + " already covers this scenario"};
        }
        if (new_date == old_date && record.time_seconds > existing.time_seconds) {
            return {false, "tied date: the existing result is faster"};
        }
        // Newest wins (or same-date improvement / idempotent re-put).
        // Carry the loser's provenance along, capped.
        json::Value history = json::Value::array();
        if (const json::Value* old_history = existing.provenance.is_object()
                ? existing.provenance.find("supersedes")
                : nullptr) {
            if (old_history->is_array()) {
                history = *old_history;
            }
        }
        history.push_back(supersedes_summary(existing));
        while (history.size() > kMaxSupersedes) {
            history.as_array().erase(history.as_array().begin());
        }
        record.provenance["supersedes"] = std::move(history);
        existing = std::move(record);
        save_locked(kernel_name);
        return {true, ""};
    }
    records.push_back(std::move(record));
    save_locked(kernel_name);
    return {true, ""};
}

void WisdomStore::save_locked(const std::string& kernel_name) {
    if (dir_.empty()) {
        return;
    }
    try {
        core::WisdomFile file(kernel_name);
        for (const core::WisdomRecord& record : kernels_[kernel_name]) {
            file.add(record, /*force=*/true);
        }
        file.save(path_join(dir_, kernel_name + ".wisdom.json"));
    } catch (const Error&) {
        // Best-effort persistence; the in-memory aggregate keeps serving.
    }
}

json::Value WisdomStore::get(
    const std::string& kernel_name,
    const std::string& device_name,
    const std::string& device_arch,
    const json::Value& problem_json) const {
    json::Value reply = json::Value::object();
    reply["found"] = false;

    core::ProblemSize problem;
    try {
        problem = core::ProblemSize::from_json(problem_json);
    } catch (const Error&) {
        return reply;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    auto it = kernels_.find(kernel_name);
    if (it == kernels_.end() || it->second.empty()) {
        return reply;
    }
    // Reuse the exact §4.5 heuristic a local wisdom file would apply.
    core::WisdomFile file(kernel_name);
    for (const core::WisdomRecord& record : it->second) {
        file.add(record, /*force=*/true);
    }
    const core::WisdomFile::Selection selection
        = file.select(device_name, device_arch, problem);
    if (selection.record == nullptr) {
        return reply;
    }
    reply["found"] = true;
    reply["config"] = selection.record->config.to_json();
    reply["match"] = core::wisdom_match_name(selection.match);
    reply["time_ms"] = selection.record->time_seconds * 1e3;
    reply["provenance"] = selection.record->provenance;
    return reply;
}

size_t WisdomStore::kernel_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return kernels_.size();
}

size_t WisdomStore::record_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t count = 0;
    for (const auto& [kernel, records] : kernels_) {
        count += records.size();
    }
    return count;
}

// ---- ArtifactStore ----

ArtifactStore::ArtifactStore(std::string dir): dir_(std::move(dir)) {
    if (dir_.empty()) {
        return;
    }
    create_directories(dir_);
    for (const std::string& path : list_directory(dir_)) {
        if (!is_artifact_file(path)) {
            continue;
        }
        try {
            std::string text = read_text_file(path);
            const rtccache::EntryCheck check = rtccache::validate_entry_text(text);
            const std::string name = path_filename(path);
            const std::string id = name.substr(0, name.size() - 5);  // ".json"
            if (check.valid && check.id == id) {
                entries_[id] = std::move(text);
            }
        } catch (const Error&) {
            // Unreadable seed entries are simply not served.
        }
    }
}

ArtifactStore::PutResult ArtifactStore::put(
    const std::string& id,
    const std::string& entry_text) {
    const rtccache::EntryCheck check = rtccache::validate_entry_text(entry_text);
    if (!check.valid) {
        return {false, "invalid entry: " + check.error};
    }
    if (check.id != id) {
        return {false, "entry id '" + check.id + "' does not match requested id '" + id + "'"};
    }
    std::lock_guard<std::mutex> lock(mutex_);
    entries_[id] = entry_text;
    if (!dir_.empty()) {
        try {
            const std::string tmp = path_join(dir_, ".tmp-" + id);
            write_text_file(tmp, entry_text);
            rename_file(tmp, path_join(dir_, id + ".json"));
        } catch (const Error&) {
            // Best-effort persistence.
        }
    }
    return {true, ""};
}

std::optional<std::string> ArtifactStore::get(const std::string& id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(id);
    if (it == entries_.end()) {
        return std::nullopt;
    }
    return it->second;
}

std::vector<std::string> ArtifactStore::ids() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [id, text] : entries_) {
        out.push_back(id);
    }
    return out;
}

size_t ArtifactStore::count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

uint64_t ArtifactStore::bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t total = 0;
    for (const auto& [id, text] : entries_) {
        total += text.size();
    }
    return total;
}

// ---- Server ----

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      wisdom_(options_.wisdom_dir),
      artifacts_(options_.artifact_dir) {}

Server::~Server() {
    stop();
}

void Server::start() {
    if (running_.load()) {
        return;
    }
    listener_ = Socket::listen(options_.bind_address, options_.port);
    port_ = listener_.bound_port();
    running_.store(true);
    accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
    if (!running_.exchange(false)) {
        return;
    }
    if (accept_thread_.joinable()) {
        accept_thread_.join();
    }
    listener_.close();
    std::vector<SessionSlot> sessions;
    {
        std::lock_guard<std::mutex> lock(sessions_mutex_);
        sessions.swap(sessions_);
    }
    for (SessionSlot& slot : sessions) {
        if (slot.thread.joinable()) {
            slot.thread.join();
        }
    }
}

void Server::reap_finished_sessions() {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (size_t i = 0; i < sessions_.size();) {
        if (sessions_[i].done->load(std::memory_order_acquire)) {
            if (sessions_[i].thread.joinable()) {
                sessions_[i].thread.join();
            }
            sessions_.erase(sessions_.begin() + i);
        } else {
            ++i;
        }
    }
}

void Server::accept_loop() {
    while (running_.load(std::memory_order_relaxed)) {
        std::optional<Socket> conn;
        try {
            conn = listener_.accept(kPollSeconds);
        } catch (const Error&) {
            if (!running_.load(std::memory_order_relaxed)) {
                break;
            }
            continue;
        }
        if (!conn) {
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(counters_mutex_);
            connections_ += 1;
        }
        reap_finished_sessions();
        auto done = std::make_shared<std::atomic<bool>>(false);
        auto shared_conn = std::make_shared<Socket>(std::move(*conn));
        std::thread thread([this, shared_conn, done] {
            session(std::move(*shared_conn));
            done->store(true, std::memory_order_release);
        });
        std::lock_guard<std::mutex> lock(sessions_mutex_);
        sessions_.push_back({std::move(thread), std::move(done)});
    }
}

void Server::session(Socket conn) {
    while (running_.load(std::memory_order_relaxed)) {
        // The header is read "by hand" (not recv_frame) so a
        // version-mismatched peer can be answered with a proper Error
        // frame before the disconnect, instead of being silently dropped.
        unsigned char header_bytes[kHeaderBytes];
        try {
            conn.recv_exact(header_bytes, sizeof header_bytes, kPollSeconds);
        } catch (const Socket::TimeoutError&) {
            continue;  // idle connection; re-check the running flag
        } catch (const Socket::ClosedError&) {
            return;  // client done
        } catch (const Error&) {
            return;  // reset mid-header
        }

        Header header;
        const DecodeStatus status = decode_header(header_bytes, header);
        if (status != DecodeStatus::Ok) {
            {
                std::lock_guard<std::mutex> lock(counters_mutex_);
                protocol_errors_ += 1;
            }
            if (status == DecodeStatus::BadVersion) {
                json::Value error = json::Value::object();
                error["code"] = "version";
                error["message"] = "this daemon speaks protocol version "
                    + std::to_string(static_cast<int>(kProtocolVersion)) + ", peer sent "
                    + std::to_string(static_cast<int>(header.version));
                try {
                    conn.send_frame(MsgType::Error, error, kIoSeconds);
                } catch (const Error&) {
                }
            }
            // Bad magic / oversized length / reserved bytes: the stream is
            // garbage and cannot be resynchronized. Drop it.
            return;
        }

        json::Value payload;
        try {
            std::string body(header.payload_bytes, '\0');
            if (header.payload_bytes > 0) {
                conn.recv_exact(body.data(), body.size(), kIoSeconds);
            }
            payload = decode_payload(body);
        } catch (const Error&) {
            std::lock_guard<std::mutex> lock(counters_mutex_);
            protocol_errors_ += 1;
            return;  // truncated or non-JSON payload
        }

        MsgType reply_type = MsgType::Error;
        json::Value reply;
        try {
            reply = handle(header.type, payload, reply_type);
        } catch (const Error& e) {
            std::lock_guard<std::mutex> lock(counters_mutex_);
            protocol_errors_ += 1;
            json::Value error = json::Value::object();
            error["code"] = "bad-request";
            error["message"] = e.what();
            try {
                conn.send_frame(MsgType::Error, error, kIoSeconds);
            } catch (const Error&) {
            }
            return;
        }
        if (options_.verbose) {
            std::fprintf(
                stderr, "[kl-wisdomd] %s -> %s\n", msg_type_name(header.type),
                msg_type_name(reply_type));
        }
        try {
            conn.send_frame(reply_type, reply, kIoSeconds);
        } catch (const Error&) {
            return;  // client went away mid-reply
        }
    }
}

json::Value Server::handle(MsgType type, const json::Value& payload, MsgType& reply_type) {
    {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        request_counts_[msg_type_name(type)] += 1;
    }
    json::Value reply = json::Value::object();
    switch (type) {
        case MsgType::Ping: {
            reply_type = MsgType::Pong;
            reply["version"] = kProtocolVersion;
            return reply;
        }
        case MsgType::WisdomGet: {
            reply_type = MsgType::WisdomReply;
            return wisdom_.get(
                payload.get_string_or("kernel", ""),
                payload.get_string_or("device_name", ""),
                payload.get_string_or("device_arch", ""),
                payload.contains("problem") ? payload["problem"] : json::Value::array());
        }
        case MsgType::WisdomPut: {
            reply_type = MsgType::WisdomPutReply;
            const WisdomStore::PutResult result = wisdom_.put(
                payload.get_string_or("kernel", ""),
                payload.contains("record") ? payload["record"] : json::Value());
            reply["accepted"] = result.accepted;
            if (!result.reason.empty()) {
                reply["reason"] = result.reason;
            }
            return reply;
        }
        case MsgType::ArtifactGet: {
            reply_type = MsgType::ArtifactReply;
            const std::optional<std::string> entry
                = artifacts_.get(payload.get_string_or("id", ""));
            reply["found"] = entry.has_value();
            if (entry) {
                reply["entry"] = *entry;
            }
            return reply;
        }
        case MsgType::ArtifactPut: {
            reply_type = MsgType::ArtifactPutReply;
            const ArtifactStore::PutResult result = artifacts_.put(
                payload.get_string_or("id", ""), payload.get_string_or("entry", ""));
            reply["accepted"] = result.accepted;
            if (!result.reason.empty()) {
                reply["reason"] = result.reason;
            }
            return reply;
        }
        case MsgType::Stats: {
            reply_type = MsgType::StatsReply;
            return stats();
        }
        case MsgType::ArtifactList: {
            reply_type = MsgType::ArtifactListReply;
            json::Value ids = json::Value::array();
            for (const std::string& id : artifacts_.ids()) {
                ids.push_back(id);
            }
            reply["ids"] = std::move(ids);
            return reply;
        }
        default:
            throw Error(
                std::string("unexpected message type ") + msg_type_name(type)
                + " (replies are not requests)");
    }
}

json::Value Server::stats() const {
    json::Value out = json::Value::object();
    out["protocol_version"] = kProtocolVersion;
    out["kernels"] = static_cast<uint64_t>(wisdom_.kernel_count());
    out["records"] = static_cast<uint64_t>(wisdom_.record_count());
    out["artifacts"] = static_cast<uint64_t>(artifacts_.count());
    out["artifact_bytes"] = artifacts_.bytes();
    json::Value requests = json::Value::object();
    {
        std::lock_guard<std::mutex> lock(counters_mutex_);
        out["connections"] = connections_;
        out["protocol_errors"] = protocol_errors_;
        for (const auto& [name, count] : request_counts_) {
            requests[name] = count;
        }
    }
    out["requests"] = std::move(requests);
    return out;
}

}  // namespace kl::netwisdom
