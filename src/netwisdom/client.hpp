#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "netwisdom/socket.hpp"
#include "util/json.hpp"

namespace kl::netwisdom {

/// Client-side knobs, normally filled from the environment:
///
///   KERNEL_LAUNCHER_WISDOM_SERVER   host:port of kl-wisdomd ("" = disabled)
///   KERNEL_LAUNCHER_NET_TIMEOUT_MS  per-request I/O budget (default 500)
///   KERNEL_LAUNCHER_NET_RETRY_MS    circuit-breaker cool-down after a
///                                   failure (default 3000)
struct Settings {
    std::string server;
    int connect_timeout_ms = 200;
    int io_timeout_ms = 500;
    int retry_after_ms = 3000;

    bool enabled() const noexcept {
        return !server.empty();
    }

    /// Reads the three env vars. Throws kl::Error only on a malformed
    /// server string (a typo should be loud, an absent server silent).
    static Settings from_env();
};

/// A best-config answer from the daemon. `config` and `provenance` are the
/// raw JSON shapes defined in docs/DISTRIBUTED.md; the caller (core) turns
/// them into typed values so this library never depends on core.
struct WisdomAnswer {
    json::Value config;
    std::string match;
    double time_seconds = 0;
    json::Value provenance;
};

/// Transport-level counters for one client, mirrored into the `kl.net.*`
/// trace counters as they change.
struct ClientStats {
    uint64_t connects = 0;
    uint64_t requests = 0;
    uint64_t errors = 0;
    uint64_t timeouts = 0;
    uint64_t breaker_skips = 0;
};

/// Modeled wall-clock cost of pulling `bytes` over a warm loopback/LAN
/// connection: ~1.5 ms round trip plus ~250 MB/s of streaming. Slower than
/// the local disk model (rtccache::disk_read_seconds) and far cheaper than
/// an NVRTC compile, which is exactly the tier ordering the paper's
/// "tune once, run everywhere" pitch needs.
double net_read_seconds(uint64_t bytes) noexcept;

/// Fail-open wire client for kl-wisdomd. Every public call catches every
/// transport error internally and degrades to "not found" / "not sent":
/// a missing or sick daemon can cost a timeout, never a failed launch.
/// After a failure the breaker skips the server for retry_after_ms, so a
/// down daemon costs one connect timeout per cool-down window, not one
/// per launch.
///
/// Thread-safe: one persistent connection guarded by a mutex; concurrent
/// callers serialize per request (frames are small, requests are rare).
class Client {
  public:
    explicit Client(Settings settings);

    const Settings& settings() const noexcept {
        return settings_;
    }

    /// True when a server is configured at all.
    bool enabled() const noexcept {
        return settings_.enabled();
    }

    /// Round-trips a Ping. The one call tests use to await daemon startup.
    bool ping();

    /// Best config for (kernel, device, problem). nullopt on miss or any
    /// transport failure.
    std::optional<WisdomAnswer> wisdom_get(
        const std::string& kernel_name,
        const std::string& device_name,
        const std::string& device_arch,
        const json::Value& problem);

    /// Uploads one tuning record (wisdom-file record JSON). Returns whether
    /// the server accepted it; false also covers transport failure.
    bool wisdom_put(const std::string& kernel_name, const json::Value& record);

    /// Fetches a compiled-instance entry by rtccache id ("klc-<16hex>").
    /// Returns the full entry text, ready for DiskCache-style decoding.
    std::optional<std::string> artifact_get(const std::string& id);

    /// Uploads one compiled-instance entry.
    bool artifact_put(const std::string& id, const std::string& entry_text);

    /// Ids of every artifact the server holds (kl-cache pull --remote).
    std::optional<std::vector<std::string>> artifact_list();

    /// Server-side counters/store sizes (kl-cache stats --remote).
    std::optional<json::Value> server_stats();

    ClientStats stats() const;

    /// Drops the persistent connection and re-arms the breaker; tests use
    /// this to simulate a fresh process against the same daemon.
    void reset();

  private:
    /// One request/response exchange, reconnecting once if the persistent
    /// connection had gone stale. Throws on failure; `request` wraps it
    /// with the breaker and the catch-all.
    Frame exchange_or_throw(MsgType type, const json::Value& payload);

    /// Fail-open wrapper: breaker check, exchange, error accounting.
    /// Returns nullopt instead of throwing.
    std::optional<Frame> request(MsgType type, const json::Value& payload, MsgType expected_reply);

    void note_failure(bool timed_out);

    Settings settings_;
    std::string host_;
    uint16_t port_ = 0;
    bool address_ok_ = false;

    mutable std::mutex mutex_;
    Socket conn_;
    double skip_until_ = 0;  ///< monotonic deadline while the breaker is open
    ClientStats stats_;
};

/// Process-wide client registry, one shared client per server string, so
/// every WisdomKernel in a process shares a connection and one breaker.
/// Returns nullptr when settings.enabled() is false.
std::shared_ptr<Client> client_for(const Settings& settings);

}  // namespace kl::netwisdom
