#include "nvrtcsim/nvrtc_c_api.hpp"

#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nvrtcsim/nvrtc.hpp"
#include "util/errors.hpp"

namespace kl::rtc::c_api {

namespace {

struct ProgramState {
    std::string source;
    std::string file_name;
    std::vector<std::string> name_expressions;
    std::string log;
    bool compiled = false;
    double compile_seconds = 0;
    std::vector<sim::KernelImage> images;
    // expression -> lowered name (stable storage for nvrtcGetLoweredName)
    std::map<std::string, std::string> lowered;
};

struct ShimState {
    std::map<nvrtcProgram, std::unique_ptr<ProgramState>> programs;
    uint64_t next_handle = 1;
};

ShimState& state() {
    static ShimState instance;
    return instance;
}

ProgramState* get(nvrtcProgram program) {
    auto it = state().programs.find(program);
    return it == state().programs.end() ? nullptr : it->second.get();
}

}  // namespace

const char* nvrtcGetErrorString(nvrtcResult result) {
    switch (result) {
        case NVRTC_SUCCESS:
            return "NVRTC_SUCCESS";
        case NVRTC_ERROR_OUT_OF_MEMORY:
            return "NVRTC_ERROR_OUT_OF_MEMORY";
        case NVRTC_ERROR_PROGRAM_CREATION_FAILURE:
            return "NVRTC_ERROR_PROGRAM_CREATION_FAILURE";
        case NVRTC_ERROR_INVALID_INPUT:
            return "NVRTC_ERROR_INVALID_INPUT";
        case NVRTC_ERROR_INVALID_PROGRAM:
            return "NVRTC_ERROR_INVALID_PROGRAM";
        case NVRTC_ERROR_INVALID_OPTION:
            return "NVRTC_ERROR_INVALID_OPTION";
        case NVRTC_ERROR_COMPILATION:
            return "NVRTC_ERROR_COMPILATION";
        case NVRTC_ERROR_NAME_EXPRESSION_NOT_VALID:
            return "NVRTC_ERROR_NAME_EXPRESSION_NOT_VALID";
    }
    return "NVRTC_ERROR_UNKNOWN";
}

nvrtcResult nvrtcCreateProgram(
    nvrtcProgram* program,
    const char* source,
    const char* name,
    int num_headers,
    const char* const* /*headers*/,
    const char* const* /*include_names*/) {
    if (program == nullptr || source == nullptr) {
        return NVRTC_ERROR_INVALID_INPUT;
    }
    if (num_headers != 0) {
        return NVRTC_ERROR_INVALID_INPUT;  // headers unsupported in the simulator
    }
    auto entry = std::make_unique<ProgramState>();
    entry->source = source;
    entry->file_name = name != nullptr ? name : "<inline>";
    nvrtcProgram handle = state().next_handle++;
    state().programs.emplace(handle, std::move(entry));
    *program = handle;
    return NVRTC_SUCCESS;
}

nvrtcResult nvrtcAddNameExpression(nvrtcProgram program, const char* name_expression) {
    ProgramState* p = get(program);
    if (p == nullptr) {
        return NVRTC_ERROR_INVALID_PROGRAM;
    }
    if (name_expression == nullptr || *name_expression == '\0') {
        return NVRTC_ERROR_NAME_EXPRESSION_NOT_VALID;
    }
    if (p->compiled) {
        return NVRTC_ERROR_INVALID_INPUT;  // must precede compilation
    }
    p->name_expressions.emplace_back(name_expression);
    return NVRTC_SUCCESS;
}

nvrtcResult nvrtcCompileProgram(
    nvrtcProgram program,
    int num_options,
    const char* const* options) {
    ProgramState* p = get(program);
    if (p == nullptr) {
        return NVRTC_ERROR_INVALID_PROGRAM;
    }
    if (p->name_expressions.empty()) {
        p->log = "error: no name expressions registered (the simulated NVRTC "
                 "resolves kernels via nvrtcAddNameExpression)\n";
        return NVRTC_ERROR_INVALID_INPUT;
    }
    std::vector<std::string> opts;
    for (int i = 0; i < num_options; i++) {
        if (options == nullptr || options[i] == nullptr) {
            return NVRTC_ERROR_INVALID_INPUT;
        }
        opts.emplace_back(options[i]);
    }

    try {
        auto [base, args] = parse_name_expression(p->name_expressions.front());
        Program compiler(base, p->source, p->file_name);
        for (const std::string& expression : p->name_expressions) {
            compiler.add_name_expression(expression);
        }
        CompileResult result = compiler.compile(opts);
        p->log = result.log;
        p->compile_seconds = result.compile_seconds;
        p->images = std::move(result.images);
        for (size_t i = 0; i < p->name_expressions.size(); i++) {
            p->lowered[p->name_expressions[i]] = p->images[i].lowered_name;
        }
        p->compiled = true;
        return NVRTC_SUCCESS;
    } catch (const CompileError& e) {
        p->log = e.log();
        return NVRTC_ERROR_COMPILATION;
    } catch (const Error& e) {
        p->log = std::string("error: ") + e.what() + "\n";
        return NVRTC_ERROR_COMPILATION;
    }
}

nvrtcResult nvrtcGetProgramLogSize(nvrtcProgram program, size_t* size) {
    ProgramState* p = get(program);
    if (p == nullptr) {
        return NVRTC_ERROR_INVALID_PROGRAM;
    }
    if (size == nullptr) {
        return NVRTC_ERROR_INVALID_INPUT;
    }
    *size = p->log.size() + 1;
    return NVRTC_SUCCESS;
}

nvrtcResult nvrtcGetProgramLog(nvrtcProgram program, char* log) {
    ProgramState* p = get(program);
    if (p == nullptr) {
        return NVRTC_ERROR_INVALID_PROGRAM;
    }
    if (log == nullptr) {
        return NVRTC_ERROR_INVALID_INPUT;
    }
    std::memcpy(log, p->log.c_str(), p->log.size() + 1);
    return NVRTC_SUCCESS;
}

nvrtcResult nvrtcGetPTXSize(nvrtcProgram program, size_t* size) {
    ProgramState* p = get(program);
    if (p == nullptr) {
        return NVRTC_ERROR_INVALID_PROGRAM;
    }
    if (size == nullptr || !p->compiled) {
        return NVRTC_ERROR_INVALID_INPUT;
    }
    *size = p->images.front().ptx.size() + 1;
    return NVRTC_SUCCESS;
}

nvrtcResult nvrtcGetPTX(nvrtcProgram program, char* ptx) {
    ProgramState* p = get(program);
    if (p == nullptr) {
        return NVRTC_ERROR_INVALID_PROGRAM;
    }
    if (ptx == nullptr || !p->compiled) {
        return NVRTC_ERROR_INVALID_INPUT;
    }
    const std::string& text = p->images.front().ptx;
    std::memcpy(ptx, text.c_str(), text.size() + 1);
    return NVRTC_SUCCESS;
}

nvrtcResult nvrtcGetLoweredName(
    nvrtcProgram program,
    const char* name_expression,
    const char** lowered_name) {
    ProgramState* p = get(program);
    if (p == nullptr) {
        return NVRTC_ERROR_INVALID_PROGRAM;
    }
    if (name_expression == nullptr || lowered_name == nullptr || !p->compiled) {
        return NVRTC_ERROR_INVALID_INPUT;
    }
    auto it = p->lowered.find(name_expression);
    if (it == p->lowered.end()) {
        return NVRTC_ERROR_NAME_EXPRESSION_NOT_VALID;
    }
    *lowered_name = it->second.c_str();
    return NVRTC_SUCCESS;
}

nvrtcResult klGetImage(
    nvrtcProgram program,
    const char* lowered_name,
    const void** image) {
    ProgramState* p = get(program);
    if (p == nullptr) {
        return NVRTC_ERROR_INVALID_PROGRAM;
    }
    if (lowered_name == nullptr || image == nullptr || !p->compiled) {
        return NVRTC_ERROR_INVALID_INPUT;
    }
    for (const sim::KernelImage& candidate : p->images) {
        if (candidate.lowered_name == lowered_name || candidate.name == lowered_name) {
            *image = &candidate;
            return NVRTC_SUCCESS;
        }
    }
    return NVRTC_ERROR_NAME_EXPRESSION_NOT_VALID;
}

nvrtcResult klGetCompileSeconds(nvrtcProgram program, double* seconds) {
    ProgramState* p = get(program);
    if (p == nullptr) {
        return NVRTC_ERROR_INVALID_PROGRAM;
    }
    if (seconds == nullptr) {
        return NVRTC_ERROR_INVALID_INPUT;
    }
    *seconds = p->compile_seconds;
    return NVRTC_SUCCESS;
}

nvrtcResult nvrtcDestroyProgram(nvrtcProgram* program) {
    if (program == nullptr) {
        return NVRTC_ERROR_INVALID_INPUT;
    }
    if (state().programs.erase(*program) == 0) {
        return NVRTC_ERROR_INVALID_PROGRAM;
    }
    *program = 0;
    return NVRTC_SUCCESS;
}

void reset_nvrtc_state_for_testing() {
    state().programs.clear();
}

}  // namespace kl::rtc::c_api
