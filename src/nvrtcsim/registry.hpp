#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cudasim/kernel_image.hpp"

namespace kl::rtc {

/// Registered implementation of one kernel family. The simulated NVRTC
/// cannot generate machine code from CUDA C++, so every kernel that can be
/// "compiled" must have a host implementation registered up front. The
/// implementation receives the compile-time constants (preprocessor defines
/// plus template arguments) and must honor them exactly — the tunable work
/// assignment (tiling, strides, unravel order) is executed for real, which
/// is how the test suite proves that every point of the configuration space
/// is semantics-preserving.
struct KernelEntry {
    /// Base kernel name as it appears in the source (e.g. "advec_u").
    std::string name;

    /// Cost-model description used by the performance model.
    sim::KernelProfile profile;

    /// Names of template parameters, in declaration order. A name
    /// expression "advec_u<double>" binds template_params[0] to "double"
    /// in the instance's constant map.
    std::vector<std::string> template_params;

    /// Compile-time constants the kernel body references; compilation
    /// fails with an "identifier undefined" diagnostic when one is missing
    /// and has no entry in `constant_defaults`.
    std::vector<std::string> required_constants;

    /// Optional default values for constants (like a `#ifndef` fallback in
    /// the source).
    std::map<std::string, std::string> constant_defaults;

    /// Builds the executable implementation for one instance. May throw
    /// kl::Error for unsupported constant combinations (reported as a
    /// compile error). An empty function yields a timing-only image.
    std::function<sim::KernelImage::Impl(const sim::ConstantMap&)> make_impl;
};

/// Process-global kernel implementation catalog.
class KernelRegistry {
  public:
    static KernelRegistry& global();

    /// Registers or replaces an entry.
    void add(KernelEntry entry);

    bool contains(const std::string& name) const;

    /// Throws CompileError-style kl::Error when the kernel is unknown.
    const KernelEntry& lookup(const std::string& name) const;

    std::vector<std::string> names() const;

  private:
    std::map<std::string, KernelEntry> entries_;
};

/// Registers the built-in demonstration kernels (vector_add, saxpy,
/// copy3d); idempotent. Called lazily by Program::compile so that simple
/// examples work without explicit setup.
void register_builtin_kernels();

/// CUDA source text of a built-in kernel, for examples and tests that want
/// a self-contained .cu file. Throws kl::Error for unknown names.
const std::string& builtin_kernel_source(const std::string& name);

}  // namespace kl::rtc
