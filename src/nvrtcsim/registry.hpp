#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cudasim/kernel_image.hpp"

namespace kl::rtc {

/// Registered implementation of one kernel family. The simulated NVRTC
/// cannot generate machine code from CUDA C++, so every kernel that can be
/// "compiled" must have a host implementation registered up front. The
/// implementation receives the compile-time constants (preprocessor defines
/// plus template arguments) and must honor them exactly — the tunable work
/// assignment (tiling, strides, unravel order) is executed for real, which
/// is how the test suite proves that every point of the configuration space
/// is semantics-preserving.
struct KernelEntry {
    /// Base kernel name as it appears in the source (e.g. "advec_u").
    std::string name;

    /// Cost-model description used by the performance model.
    sim::KernelProfile profile;

    /// Names of template parameters, in declaration order. A name
    /// expression "advec_u<double>" binds template_params[0] to "double"
    /// in the instance's constant map.
    std::vector<std::string> template_params;

    /// Compile-time constants the kernel body references; compilation
    /// fails with an "identifier undefined" diagnostic when one is missing
    /// and has no entry in `constant_defaults`.
    std::vector<std::string> required_constants;

    /// Optional default values for constants (like a `#ifndef` fallback in
    /// the source).
    std::map<std::string, std::string> constant_defaults;

    /// Builds the executable implementation for one instance. May throw
    /// kl::Error for unsupported constant combinations (reported as a
    /// compile error). An empty function yields a timing-only image.
    std::function<sim::KernelImage::Impl(const sim::ConstantMap&)> make_impl;
};

/// Process-global kernel implementation catalog. Thread-safe: background
/// compile jobs look kernels up while tests or applications register new
/// entries. Entries are immutable once registered; `add` of an existing
/// name installs a fresh entry, and holders of the old one (via find())
/// keep a valid snapshot.
class KernelRegistry {
  public:
    static KernelRegistry& global();

    /// Registers or replaces an entry.
    void add(KernelEntry entry);

    bool contains(const std::string& name) const;

    /// The entry registered under `name`, or nullptr. The returned pointer
    /// stays valid even if the entry is concurrently replaced.
    std::shared_ptr<const KernelEntry> find(const std::string& name) const;

    /// Throws kl::Error when the kernel is unknown. The reference is valid
    /// until the entry is replaced by another add() of the same name;
    /// concurrent compilations should prefer find().
    const KernelEntry& lookup(const std::string& name) const;

    std::vector<std::string> names() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::shared_ptr<const KernelEntry>> entries_;
};

/// Registers the built-in demonstration kernels (vector_add, saxpy,
/// copy3d); idempotent. Called lazily by Program::compile so that simple
/// examples work without explicit setup.
void register_builtin_kernels();

/// CUDA source text of a built-in kernel, for examples and tests that want
/// a self-contained .cu file. Throws kl::Error for unknown names.
const std::string& builtin_kernel_source(const std::string& name);

}  // namespace kl::rtc
