#include "nvrtcsim/lexer.hpp"

#include <cctype>

namespace kl::rtc {

namespace {

bool ident_start(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::string strip_comments(const std::string& source) {
    std::string out = source;
    enum class State { Code, LineComment, BlockComment, String, Char };
    State state = State::Code;
    for (size_t i = 0; i < out.size(); i++) {
        char c = out[i];
        char next = i + 1 < out.size() ? out[i + 1] : '\0';
        switch (state) {
            case State::Code:
                if (c == '/' && next == '/') {
                    state = State::LineComment;
                    out[i] = ' ';
                } else if (c == '/' && next == '*') {
                    state = State::BlockComment;
                    out[i] = ' ';
                } else if (c == '"') {
                    state = State::String;
                    out[i] = ' ';
                } else if (c == '\'') {
                    state = State::Char;
                    out[i] = ' ';
                }
                break;
            case State::LineComment:
                if (c == '\n') {
                    state = State::Code;
                } else {
                    out[i] = ' ';
                }
                break;
            case State::BlockComment:
                if (c == '*' && next == '/') {
                    out[i] = ' ';
                    out[i + 1] = ' ';
                    i++;
                    state = State::Code;
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
            case State::String:
                if (c == '\\') {
                    out[i] = ' ';
                    if (next != '\n' && next != '\0') {
                        out[i + 1] = ' ';
                        i++;
                    }
                } else if (c == '"') {
                    state = State::Code;
                    out[i] = ' ';
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
            case State::Char:
                if (c == '\\') {
                    out[i] = ' ';
                    if (next != '\n' && next != '\0') {
                        out[i + 1] = ' ';
                        i++;
                    }
                } else if (c == '\'') {
                    state = State::Code;
                    out[i] = ' ';
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
        }
    }
    return out;
}

std::set<std::string> source_identifiers(const std::string& source) {
    const std::string code = strip_comments(source);
    std::set<std::string> out;
    size_t i = 0;
    while (i < code.size()) {
        if (ident_start(code[i])) {
            size_t start = i;
            while (i < code.size() && ident_char(code[i])) {
                i++;
            }
            out.emplace(code.substr(start, i - start));
        } else {
            i++;
        }
    }
    return out;
}

int identifier_line(const std::string& source, const std::string& name) {
    if (name.empty()) {
        return 0;
    }
    const std::string code = strip_comments(source);
    int line = 1;
    size_t i = 0;
    while (i < code.size()) {
        if (code[i] == '\n') {
            line++;
            i++;
        } else if (ident_start(code[i])) {
            size_t start = i;
            while (i < code.size() && ident_char(code[i])) {
                i++;
            }
            if (code.compare(start, i - start, name) == 0) {
                return line;
            }
        } else {
            i++;
        }
    }
    return 0;
}

int substring_line(const std::string& source, const std::string& needle) {
    size_t pos = source.find(needle);
    if (needle.empty() || pos == std::string::npos) {
        return 0;
    }
    int line = 1;
    for (size_t i = 0; i < pos; i++) {
        if (source[i] == '\n') {
            line++;
        }
    }
    return line;
}

bool has_include_directives(const std::string& source) {
    const std::string code = strip_comments(source);
    size_t pos = 0;
    while ((pos = code.find('#', pos)) != std::string::npos) {
        size_t i = pos + 1;
        while (i < code.size() && (code[i] == ' ' || code[i] == '\t')) {
            i++;
        }
        if (code.compare(i, 7, "include") == 0) {
            return true;
        }
        pos++;
    }
    return false;
}

}  // namespace kl::rtc
