#include "nvrtcsim/registry.hpp"

#include "util/errors.hpp"

namespace kl::rtc {

KernelRegistry& KernelRegistry::global() {
    static KernelRegistry instance;
    return instance;
}

void KernelRegistry::add(KernelEntry entry) {
    if (entry.name.empty()) {
        throw Error("kernel registry entry must have a name");
    }
    entries_[entry.name] = std::move(entry);
}

bool KernelRegistry::contains(const std::string& name) const {
    return entries_.count(name) != 0;
}

const KernelEntry& KernelRegistry::lookup(const std::string& name) const {
    auto it = entries_.find(name);
    if (it == entries_.end()) {
        throw Error("no kernel implementation registered under name '" + name + "'");
    }
    return it->second;
}

std::vector<std::string> KernelRegistry::names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) {
        out.push_back(name);
    }
    return out;
}

}  // namespace kl::rtc
