#include "nvrtcsim/registry.hpp"

#include "util/errors.hpp"

namespace kl::rtc {

KernelRegistry& KernelRegistry::global() {
    static KernelRegistry instance;
    return instance;
}

void KernelRegistry::add(KernelEntry entry) {
    if (entry.name.empty()) {
        throw Error("kernel registry entry must have a name");
    }
    auto shared = std::make_shared<const KernelEntry>(std::move(entry));
    std::lock_guard<std::mutex> lock(mutex_);
    entries_[shared->name] = std::move(shared);
}

bool KernelRegistry::contains(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.count(name) != 0;
}

std::shared_ptr<const KernelEntry> KernelRegistry::find(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : it->second;
}

const KernelEntry& KernelRegistry::lookup(const std::string& name) const {
    std::shared_ptr<const KernelEntry> entry = find(name);
    if (entry == nullptr) {
        throw Error("no kernel implementation registered under name '" + name + "'");
    }
    return *entry;
}

std::vector<std::string> KernelRegistry::names() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) {
        out.push_back(name);
    }
    return out;
}

}  // namespace kl::rtc
