#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cudasim/kernel_image.hpp"
#include "nvrtcsim/registry.hpp"

namespace kl::util {
class ThreadPool;
}

namespace kl::rtc {

/// Parsed view of NVRTC-style compile options.
struct CompileOptions {
    std::vector<std::pair<std::string, std::string>> defines;  ///< -D NAME=VALUE
    std::string arch = "compute_80";  ///< --gpu-architecture / -arch
    std::string std_version = "c++17";
    bool fast_math = false;
    std::vector<std::string> unrecognized;

    /// Parses raw option strings; accepts "-DX=1", "-D X=1",
    /// "--gpu-architecture=compute_86", "-arch=sm_86", "-std=c++17",
    /// "--use_fast_math". Unknown options are collected, not rejected
    /// (matching NVRTC's warning behavior).
    static CompileOptions parse(const std::vector<std::string>& raw);
};

/// Result of a successful compilation.
struct CompileResult {
    std::vector<sim::KernelImage> images;  ///< one per name expression
    std::string log;                       ///< warnings
    double compile_seconds = 0;            ///< modeled NVRTC latency
};

/// Simulated nvrtcProgram. Usage mirrors NVRTC:
///
///     Program program("advec_u", source, "advec_u.cu");
///     program.add_name_expression("advec_u<double>");
///     CompileResult r = program.compile({"-DBLOCK_SIZE_X=32", ...});
///
/// Compilation validates the source superficially (the kernel must be
/// declared `__global__`, braces must balance), resolves every name
/// expression against the kernel registry, checks that all constants the
/// kernel requires are defined, estimates register usage (including
/// `__launch_bounds__`-driven capping and spilling), and produces a
/// pseudo-PTX image bound to the registered host implementation.
class Program {
  public:
    Program(std::string default_name, std::string source, std::string file_name = "<inline>");

    /// Adds an explicit instantiation to compile, e.g. "advec_u<float>".
    /// When none is added, the program compiles `default_name` alone.
    void add_name_expression(std::string expression);

    /// Compiles all name expressions. Throws kl::CompileError (carrying the
    /// full log) on failure.
    CompileResult compile(const std::vector<std::string>& options) const;

    const std::string& source() const noexcept {
        return source_;
    }
    const std::string& file_name() const noexcept {
        return file_name_;
    }

  private:
    CompileResult compile_impl(const std::vector<std::string>& options) const;

    std::string default_name_;
    std::string source_;
    std::string file_name_;
    std::vector<std::string> name_expressions_;
};

/// A handle to an asynchronous compilation started with compile_async():
/// the future-like side of the compile-ahead pipeline. Copyable; all
/// copies share one underlying job. A default-constructed job is invalid.
class CompileJob {
  public:
    CompileJob() = default;

    bool valid() const noexcept {
        return state_ != nullptr;
    }

    /// True once the job has finished, successfully or not. Never blocks.
    bool ready() const;

    /// Blocks until the job has finished (does not throw on failure).
    void wait() const;

    /// Blocks until finished, then returns the result. Rethrows the
    /// compilation error (kl::CompileError carrying the full log) on
    /// failure — deferred error reporting, as the upstream library's
    /// background compilation does. May be called repeatedly.
    const CompileResult& get() const;

  private:
    struct State;
    explicit CompileJob(std::shared_ptr<State> state): state_(std::move(state)) {}

    std::shared_ptr<State> state_;

    friend CompileJob compile_async(
        Program program,
        std::vector<std::string> options,
        util::ThreadPool* pool);
};

/// Compiles `program` on a worker thread of `pool` (the process-wide
/// compile pool when null) and returns immediately. The job outlives the
/// caller's stack: its state is shared with the worker.
CompileJob compile_async(
    Program program,
    std::vector<std::string> options,
    util::ThreadPool* pool = nullptr);

/// Register-allocation estimate for one kernel instance, mirroring what
/// ptxas does with `__launch_bounds__`: the compiler targets enough blocks
/// per SM and squeezes/spills when the budget is exceeded. Exposed so the
/// static analysis (kl-lint KL003) can predict spilling for a configuration
/// without compiling it.
struct RegisterEstimate {
    int registers_per_thread = 0;
    int squeezed_registers = 0;  ///< mild-cost allocation squeezing
    int spilled_registers = 0;   ///< true local-memory spills
};

/// Estimates register usage of `entry` under the given compile-time
/// constants. `element_size` is the element type width in bytes (8 doubles
/// register pressure for double precision); `registers_per_sm` comes from
/// the target device.
RegisterEstimate estimate_register_usage(
    const KernelEntry& entry,
    const sim::ConstantMap& constants,
    size_t element_size,
    int registers_per_sm);

/// Splits a name expression into base name and template arguments:
/// "advec_u<double, 4>" -> {"advec_u", {"double", "4"}}. Handles nested
/// angle brackets. Throws kl::Error on malformed input.
std::pair<std::string, std::vector<std::string>> parse_name_expression(
    const std::string& expression);

/// sizeof() for the small set of scalar type names template arguments and
/// REAL defines may use. Returns nullopt for unknown type names.
std::optional<size_t> scalar_type_size(const std::string& type_name);

}  // namespace kl::rtc
