#include <cstdint>
#include <map>
#include <string>

#include "cudasim/kernel_image.hpp"
#include "nvrtcsim/registry.hpp"
#include "util/errors.hpp"

namespace kl::rtc {

namespace {

// ---------------------------------------------------------------------------
// vector_add — the paper's Listing 1: a one-dimensional element-wise kernel
// with the block size as a template parameter.
// ---------------------------------------------------------------------------

const std::string kVectorAddSource = R"cuda(
template <int block_size>
__global__ void vector_add(float *c, float *a, float *b, int n) {
    int i = blockIdx.x * block_size + threadIdx.x;
    if (i < n) {
        c[i] = a[i] + b[i];
    }
}
)cuda";

sim::KernelImage::Impl make_vector_add(const sim::ConstantMap& constants) {
    int64_t block_size = constants.get_int("block_size");
    if (block_size < 1 || block_size > 1024) {
        throw Error("vector_add: block_size out of range");
    }
    return [block_size](const sim::LaunchParams& p) {
        const int n = p.scalar<int>(3);
        float* c = p.buffer<float>(0, static_cast<size_t>(n));
        const float* a = p.buffer<float>(1, static_cast<size_t>(n));
        const float* b = p.buffer<float>(2, static_cast<size_t>(n));
        for (uint32_t blk = 0; blk < p.grid.x; blk++) {
            for (int64_t thread = 0; thread < block_size; thread++) {
                int64_t i = static_cast<int64_t>(blk) * block_size + thread;
                if (i < n) {
                    c[i] = a[i] + b[i];
                }
            }
        }
    };
}

// ---------------------------------------------------------------------------
// saxpy — classic y = a*x + y, block size via a preprocessor define.
// ---------------------------------------------------------------------------

const std::string kSaxpySource = R"cuda(
__global__ void saxpy(float *y, const float *x, float a, int n) {
    int i = blockIdx.x * BLOCK_SIZE + threadIdx.x;
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}
)cuda";

sim::KernelImage::Impl make_saxpy(const sim::ConstantMap& constants) {
    int64_t block_size = constants.get_int("BLOCK_SIZE");
    return [block_size](const sim::LaunchParams& p) {
        const float a = p.scalar<float>(2);
        const int n = p.scalar<int>(3);
        float* y = p.buffer<float>(0, static_cast<size_t>(n));
        const float* x = p.buffer<float>(1, static_cast<size_t>(n));
        for (uint32_t blk = 0; blk < p.grid.x; blk++) {
            for (int64_t thread = 0; thread < block_size; thread++) {
                int64_t i = static_cast<int64_t>(blk) * block_size + thread;
                if (i < n) {
                    y[i] = a * x[i] + y[i];
                }
            }
        }
    };
}

// ---------------------------------------------------------------------------
// copy3d — a 3D memcpy-like kernel with a templated element type; exercises
// 3D launches and template-type binding in tests.
// ---------------------------------------------------------------------------

const std::string kCopy3dSource = R"cuda(
template <typename real>
__global__ void copy3d(real *dst, const real *src, int nx, int ny, int nz) {
    int x = blockIdx.x * blockDim.x + threadIdx.x;
    int y = blockIdx.y * blockDim.y + threadIdx.y;
    int z = blockIdx.z * blockDim.z + threadIdx.z;
    if (x < nx && y < ny && z < nz) {
        long long i = (long long)z * ny * nx + (long long)y * nx + x;
        dst[i] = src[i];
    }
}
)cuda";

template<typename T>
void run_copy3d(const sim::LaunchParams& p) {
    const int nx = p.scalar<int>(2);
    const int ny = p.scalar<int>(3);
    const int nz = p.scalar<int>(4);
    const size_t count = static_cast<size_t>(nx) * ny * nz;
    T* dst = p.buffer<T>(0, count);
    const T* src = p.buffer<T>(1, count);
    for (uint32_t bz = 0; bz < p.grid.z; bz++) {
        for (uint32_t by = 0; by < p.grid.y; by++) {
            for (uint32_t bx = 0; bx < p.grid.x; bx++) {
                for (uint32_t tz = 0; tz < p.block.z; tz++) {
                    for (uint32_t ty = 0; ty < p.block.y; ty++) {
                        for (uint32_t tx = 0; tx < p.block.x; tx++) {
                            int64_t x = static_cast<int64_t>(bx) * p.block.x + tx;
                            int64_t y = static_cast<int64_t>(by) * p.block.y + ty;
                            int64_t z = static_cast<int64_t>(bz) * p.block.z + tz;
                            if (x < nx && y < ny && z < nz) {
                                int64_t i = (z * ny + y) * nx + x;
                                dst[i] = src[i];
                            }
                        }
                    }
                }
            }
        }
    }
}

sim::KernelImage::Impl make_copy3d(const sim::ConstantMap& constants) {
    std::string real = constants.get_string_or("real", "float");
    if (real == "float") {
        return run_copy3d<float>;
    }
    if (real == "double") {
        return run_copy3d<double>;
    }
    throw Error("copy3d: unsupported element type '" + real + "'");
}

const std::map<std::string, std::string>& builtin_sources() {
    static const std::map<std::string, std::string> sources = {
        {"vector_add", kVectorAddSource},
        {"saxpy", kSaxpySource},
        {"copy3d", kCopy3dSource},
    };
    return sources;
}

}  // namespace

void register_builtin_kernels() {
    static const bool done = [] {
        KernelRegistry& registry = KernelRegistry::global();

        {
            KernelEntry entry;
            entry.name = "vector_add";
            entry.template_params = {"block_size"};
            entry.required_constants = {"block_size"};
            entry.profile.flops_per_point = 1.0;
            entry.profile.reads_ideal = 2.0;
            entry.profile.reads_stream = 2.0;
            entry.profile.writes = 1.0;
            entry.profile.base_registers = 10;
            entry.make_impl = make_vector_add;
            registry.add(std::move(entry));
        }
        {
            KernelEntry entry;
            entry.name = "saxpy";
            entry.required_constants = {"BLOCK_SIZE"};
            entry.profile.flops_per_point = 2.0;
            entry.profile.reads_ideal = 2.0;
            entry.profile.reads_stream = 2.0;
            entry.profile.writes = 1.0;
            entry.profile.base_registers = 12;
            entry.make_impl = make_saxpy;
            registry.add(std::move(entry));
        }
        {
            KernelEntry entry;
            entry.name = "copy3d";
            entry.template_params = {"real"};
            entry.profile.flops_per_point = 0.0;
            entry.profile.reads_ideal = 1.0;
            entry.profile.reads_stream = 1.0;
            entry.profile.writes = 1.0;
            entry.profile.base_registers = 14;
            entry.make_impl = make_copy3d;
            registry.add(std::move(entry));
        }
        return true;
    }();
    (void) done;
}

const std::string& builtin_kernel_source(const std::string& name) {
    const auto& sources = builtin_sources();
    auto it = sources.find(name);
    if (it == sources.end()) {
        throw Error("no built-in kernel source named '" + name + "'");
    }
    return it->second;
}

}  // namespace kl::rtc
