#pragma once

#include <set>
#include <string>

namespace kl::rtc {

/// Lightweight lexical utilities over CUDA C++ source text, shared by the
/// simulated NVRTC front end and the static analysis passes (kl-lint).
/// They do not parse the language; they answer the questions the rest of
/// the system needs: "which identifiers appear in code?", "on which line?".

/// Returns the source with comments and string/character literals blanked
/// out (replaced by spaces, preserving line structure), so token scans do
/// not pick up identifiers from documentation or literals.
std::string strip_comments(const std::string& source);

/// The set of identifier tokens appearing in the source outside comments
/// and literals. Includes keywords and macro names; callers filter.
std::set<std::string> source_identifiers(const std::string& source);

/// 1-based line of the first occurrence of `name` as a whole identifier
/// token outside comments/literals; 0 when absent.
int identifier_line(const std::string& source, const std::string& name);

/// 1-based line of the first occurrence of `needle` as a raw substring
/// (comments included); 0 when absent. Used to locate pragma directives
/// and declarations for diagnostics.
int substring_line(const std::string& source, const std::string& needle);

/// True when the source has an `#include` directive. The simulated NVRTC
/// does not resolve headers, so identifier-usage checks must soften their
/// verdicts: a header may well consume a constant the visible text never
/// mentions.
bool has_include_directives(const std::string& source);

}  // namespace kl::rtc
