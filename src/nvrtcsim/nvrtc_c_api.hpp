#pragma once

#include <cstddef>
#include <cstdint>

/// An nvrtc*-style C API over the simulated runtime compiler, mirroring
/// the NVRTC entry points Kernel Launcher (and typical host code) uses:
/// program creation, name expressions, compilation, logs, PTX retrieval
/// and lowered-name lookup. Together with cudasim/driver.hpp this lets
/// host code be written verbatim against the familiar CUDA vocabulary:
///
///     nvrtcProgram prog;
///     nvrtcCreateProgram(&prog, source, "vector_add.cu", 0, nullptr, nullptr);
///     nvrtcAddNameExpression(prog, "vector_add<128>");
///     nvrtcCompileProgram(prog, 1, opts);
///     nvrtcGetLoweredName(prog, "vector_add<128>", &lowered);
///     klGetImage(prog, lowered, &image);       // simulated "cubin"
///     cuModuleLoadData(&module, image);
///
/// `klGetImage` replaces nvrtcGetCUBIN: the simulated binary format is a
/// staged kl::sim::KernelImage (see cuModuleLoadData).

namespace kl::rtc::c_api {

enum nvrtcResult_ {
    NVRTC_SUCCESS = 0,
    NVRTC_ERROR_OUT_OF_MEMORY = 1,
    NVRTC_ERROR_PROGRAM_CREATION_FAILURE = 2,
    NVRTC_ERROR_INVALID_INPUT = 3,
    NVRTC_ERROR_INVALID_PROGRAM = 4,
    NVRTC_ERROR_INVALID_OPTION = 5,
    NVRTC_ERROR_COMPILATION = 6,
    NVRTC_ERROR_NAME_EXPRESSION_NOT_VALID = 9,
};
using nvrtcResult = int;

using nvrtcProgram = uint64_t;

const char* nvrtcGetErrorString(nvrtcResult result);

/// Creates a program from source text. Headers are accepted for API
/// compatibility but must be zero (the simulated compiler resolves
/// nothing by include).
nvrtcResult nvrtcCreateProgram(
    nvrtcProgram* program,
    const char* source,
    const char* name,
    int num_headers,
    const char* const* headers,
    const char* const* include_names);

/// Registers an instantiation to compile and make queryable via
/// nvrtcGetLoweredName. Must be called before nvrtcCompileProgram.
nvrtcResult nvrtcAddNameExpression(nvrtcProgram program, const char* name_expression);

/// Compiles all registered name expressions with the given options. On
/// compilation failure returns NVRTC_ERROR_COMPILATION and the log is
/// retrievable; the program stays valid.
nvrtcResult nvrtcCompileProgram(
    nvrtcProgram program,
    int num_options,
    const char* const* options);

nvrtcResult nvrtcGetProgramLogSize(nvrtcProgram program, size_t* size);
nvrtcResult nvrtcGetProgramLog(nvrtcProgram program, char* log);

/// Pseudo-PTX of the first compiled instance.
nvrtcResult nvrtcGetPTXSize(nvrtcProgram program, size_t* size);
nvrtcResult nvrtcGetPTX(nvrtcProgram program, char* ptx);

/// Lowered (instance) name of a registered name expression. The returned
/// pointer stays valid until the program is destroyed.
nvrtcResult nvrtcGetLoweredName(
    nvrtcProgram program,
    const char* name_expression,
    const char** lowered_name);

/// Simulated-binary accessor (stands in for nvrtcGetCUBIN): the image for
/// the given lowered (or base) kernel name, suitable for cuModuleLoadData.
/// Valid until the program is destroyed.
nvrtcResult klGetImage(
    nvrtcProgram program,
    const char* lowered_name,
    const void** image);

/// Modeled compile latency of the last nvrtcCompileProgram call, in
/// seconds (an extension: callers charge it to their simulated clock).
nvrtcResult klGetCompileSeconds(nvrtcProgram program, double* seconds);

nvrtcResult nvrtcDestroyProgram(nvrtcProgram* program);

/// Testing hook: drops all shim state.
void reset_nvrtc_state_for_testing();

}  // namespace kl::rtc::c_api
