#include "nvrtcsim/nvrtc.hpp"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <mutex>

#include "nvrtcsim/lexer.hpp"
#include "trace/trace.hpp"
#include "util/errors.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace kl::rtc {

CompileOptions CompileOptions::parse(const std::vector<std::string>& raw) {
    CompileOptions opts;
    for (size_t i = 0; i < raw.size(); i++) {
        std::string_view opt = trim(raw[i]);
        if (opt.empty()) {
            continue;
        }
        auto take_value = [&](std::string_view flag) -> std::optional<std::string> {
            if (!starts_with(opt, flag)) {
                return std::nullopt;
            }
            std::string_view rest = opt.substr(flag.size());
            if (rest.empty()) {
                // value in the next option string ("-D" "X=1")
                if (i + 1 < raw.size()) {
                    return raw[++i];
                }
                throw Error("compile option '" + std::string(flag) + "' expects a value");
            }
            if (rest.front() == '=') {
                rest.remove_prefix(1);
            }
            return std::string(trim(rest));
        };

        if (auto v = take_value("-D"); v.has_value()) {
            size_t eq = v->find('=');
            if (eq == std::string::npos) {
                opts.defines.emplace_back(*v, "1");
            } else {
                opts.defines.emplace_back(v->substr(0, eq), v->substr(eq + 1));
            }
        } else if (auto v = take_value("--gpu-architecture"); v.has_value()) {
            opts.arch = *v;
        } else if (auto v = take_value("-arch"); v.has_value()) {
            // "sm_86" and "compute_86" are both accepted.
            opts.arch = *v;
        } else if (auto v = take_value("--std"); v.has_value()) {
            opts.std_version = *v;
        } else if (auto v = take_value("-std"); v.has_value()) {
            opts.std_version = *v;
        } else if (opt == "--use_fast_math" || opt == "-use_fast_math") {
            opts.fast_math = true;
        } else {
            opts.unrecognized.emplace_back(opt);
        }
    }
    return opts;
}

std::pair<std::string, std::vector<std::string>> parse_name_expression(
    const std::string& expression) {
    std::string_view text = trim(expression);
    size_t open = text.find('<');
    if (open == std::string_view::npos) {
        if (text.empty()) {
            throw Error("empty kernel name expression");
        }
        return {std::string(text), {}};
    }
    if (text.back() != '>') {
        throw Error("malformed name expression: '" + expression + "'");
    }
    std::string base(trim(text.substr(0, open)));
    if (base.empty()) {
        throw Error("malformed name expression: '" + expression + "'");
    }
    std::string_view inner = text.substr(open + 1, text.size() - open - 2);

    std::vector<std::string> args;
    std::string current;
    int depth = 0;
    for (char c : inner) {
        if (c == '<' || c == '(') {
            depth++;
        } else if (c == '>' || c == ')') {
            depth--;
            if (depth < 0) {
                throw Error("malformed name expression: '" + expression + "'");
            }
        }
        if (c == ',' && depth == 0) {
            args.emplace_back(trim(current));
            current.clear();
        } else {
            current += c;
        }
    }
    if (depth != 0) {
        throw Error("malformed name expression: '" + expression + "'");
    }
    std::string_view last = trim(current);
    if (!last.empty()) {
        args.emplace_back(last);
    } else if (!args.empty()) {
        throw Error("malformed name expression: '" + expression + "'");
    }
    return {std::move(base), std::move(args)};
}

std::optional<size_t> scalar_type_size(const std::string& type_name) {
    std::string t = std::string(trim(type_name));
    if (t == "float") {
        return 4;
    }
    if (t == "double") {
        return 8;
    }
    if (t == "half" || t == "__half") {
        return 2;
    }
    if (t == "int" || t == "unsigned" || t == "unsigned int" || t == "int32_t"
        || t == "uint32_t") {
        return 4;
    }
    if (t == "long long" || t == "int64_t" || t == "uint64_t" || t == "size_t") {
        return 8;
    }
    return std::nullopt;
}

Program::Program(std::string default_name, std::string source, std::string file_name):
    default_name_(std::move(default_name)),
    source_(std::move(source)),
    file_name_(std::move(file_name)) {}

void Program::add_name_expression(std::string expression) {
    name_expressions_.push_back(std::move(expression));
}

namespace {

/// Superficial source checks standing in for real parsing: the tuned
/// kernels are real .cu files, and typos in them should fail loudly here
/// rather than silently succeed.
void validate_source(
    const std::string& source,
    const std::string& kernel,
    const std::string& file,
    std::string& log) {
    long balance = 0;
    for (char c : source) {
        if (c == '{') {
            balance++;
        } else if (c == '}') {
            balance--;
        }
        if (balance < 0) {
            break;
        }
    }
    if (balance != 0) {
        throw CompileError(
            "compilation of kernel '" + kernel + "' (" + file + ") failed",
            file + ": error: unbalanced braces in translation unit");
    }
    if (source.find("__global__") == std::string::npos) {
        log += file + ": warning: no __global__ function declared in source\n";
    }
}

}  // namespace

RegisterEstimate estimate_register_usage(
    const KernelEntry& entry,
    const sim::ConstantMap& constants,
    size_t element_size,
    int registers_per_sm) {
    const sim::KernelProfile& prof = entry.profile;
    double regs = prof.base_registers;
    if (element_size == 8) {
        regs *= prof.dp_register_factor;
    }
    static constexpr const char* axes[3] = {"X", "Y", "Z"};
    for (const char* ax : axes) {
        int64_t tile = constants.get_int_or(std::string("TILE_FACTOR_") + ax, 1);
        bool unroll = constants.get_bool_or(std::string("UNROLL_") + ax, false);
        if (tile > 1) {
            regs += 2.0;  // loop counter and bound
            if (unroll) {
                double per_point = prof.unroll_register_cost * (element_size == 8 ? 2.0 : 1.0);
                regs += per_point * static_cast<double>(tile - 1);
            }
        }
    }

    int needed = static_cast<int>(std::ceil(regs));
    int cap = 255;

    int64_t min_blocks = constants.get_int_or("BLOCKS_PER_SM", 0);
    int64_t bx = constants.get_int_or("BLOCK_SIZE_X", 0);
    int64_t by = constants.get_int_or("BLOCK_SIZE_Y", 1);
    int64_t bz = constants.get_int_or("BLOCK_SIZE_Z", 1);
    int64_t threads = bx > 0 ? bx * by * bz : constants.get_int_or("BLOCK_SIZE", 0);
    if (min_blocks > 0 && threads > 0) {
        // __launch_bounds__(threads, min_blocks): budget per thread, rounded
        // down to the 8-register allocation granularity.
        int64_t budget = registers_per_sm / (min_blocks * threads);
        budget = std::max<int64_t>(budget - budget % 8, 16);
        cap = static_cast<int>(std::min<int64_t>(cap, budget));
    }

    RegisterEstimate out;
    if (needed > cap) {
        // ptxas first *squeezes* the allocation (rematerialization, shorter
        // live ranges) at a mild cost; only reductions beyond ~25% of the
        // demand become true local-memory spills.
        const int reduction = needed - cap;
        const int grace = (needed + 3) / 4;
        out.squeezed_registers = std::min(reduction, grace);
        out.spilled_registers = reduction - out.squeezed_registers;
        out.registers_per_thread = cap;
    } else {
        out.registers_per_thread = needed;
    }
    return out;
}

namespace {

void estimate_registers(
    const KernelEntry& entry,
    const sim::ConstantMap& constants,
    size_t element_size,
    int registers_per_sm,
    sim::KernelImage& image) {
    RegisterEstimate est =
        estimate_register_usage(entry, constants, element_size, registers_per_sm);
    image.registers_per_thread = est.registers_per_thread;
    image.squeezed_registers = est.squeezed_registers;
    image.spilled_registers = est.spilled_registers;
}

std::string render_ptx(const sim::KernelImage& image, const CompileOptions& opts) {
    std::string ptx;
    ptx += "//\n// Generated by the simulated NVRTC (kernel-launcher repro)\n//\n";
    ptx += ".version 7.7\n.target " + opts.arch + "\n.address_size 64\n\n";
    ptx += "// .globl " + image.lowered_name + "\n";
    for (const auto& [key, value] : image.constants.all()) {
        ptx += "// constant " + key + " = " + value + "\n";
    }
    ptx += ".visible .entry " + image.lowered_name + "()\n{\n";
    ptx += "    .reg .b32 %r<" + std::to_string(image.registers_per_thread) + ">;\n";
    if (image.spilled_registers > 0) {
        ptx += "    .local .align 8 .b8 __local_depot["
            + std::to_string(image.spilled_registers * 8) + "];\n";
    }
    // Body length tracks modeled instruction count so that module-load time
    // scales plausibly with kernel complexity.
    int instructions =
        static_cast<int>(std::min(4096.0, image.profile.flops_per_point * 4.0 + 16.0));
    for (int i = 0; i < instructions; i++) {
        ptx += "    fma.rn.f32 %f" + std::to_string(i % 64) + ", %f"
            + std::to_string((i + 1) % 64) + ", %f" + std::to_string((i + 2) % 64) + ", %f"
            + std::to_string((i + 3) % 64) + ";\n";
    }
    ptx += "    ret;\n}\n";
    return ptx;
}

}  // namespace

CompileResult Program::compile(const std::vector<std::string>& options) const {
    try {
        CompileResult result = compile_impl(options);
        if (trace::counters_enabled()) {
            trace::counter("nvrtc.compiles").add(1);
        }
        return result;
    } catch (...) {
        if (trace::counters_enabled()) {
            trace::counter("nvrtc.compile_errors").add(1);
        }
        throw;
    }
}

CompileResult Program::compile_impl(const std::vector<std::string>& options) const {
    register_builtin_kernels();

    CompileResult result;
    CompileOptions opts = CompileOptions::parse(options);
    for (const std::string& unknown : opts.unrecognized) {
        result.log += "warning: unrecognized option '" + unknown + "' ignored\n";
    }

    validate_source(source_, default_name_, file_name_, result.log);

    std::vector<std::string> expressions = name_expressions_;
    if (expressions.empty()) {
        expressions.push_back(default_name_);
    }

    KernelRegistry& registry = KernelRegistry::global();
    const std::set<std::string> identifiers = source_identifiers(source_);

    for (const std::string& expression : expressions) {
        auto [base, template_args] = parse_name_expression(expression);

        if (identifiers.count(base) == 0) {
            throw CompileError(
                "compilation of kernel '" + base + "' (" + file_name_ + ") failed",
                result.log + file_name_ + ": error: kernel '" + base
                    + "' not found in source");
        }
        // Hold a snapshot of the entry: a concurrent add() replacing the
        // registration must not invalidate this compilation midway.
        std::shared_ptr<const KernelEntry> entry_ptr = registry.find(base);
        if (entry_ptr == nullptr) {
            throw CompileError(
                "compilation of kernel '" + base + "' (" + file_name_ + ") failed",
                result.log + file_name_ + ": error: no device implementation registered for '"
                    + base + "' (simulated NVRTC requires registered kernels)");
        }
        const KernelEntry& entry = *entry_ptr;

        if (template_args.size() > entry.template_params.size()) {
            throw CompileError(
                "compilation of kernel '" + base + "' (" + file_name_ + ") failed",
                result.log + file_name_ + ": error: too many template arguments for '" + base
                    + "' (expected " + std::to_string(entry.template_params.size()) + ", got "
                    + std::to_string(template_args.size()) + ")");
        }

        sim::KernelImage image;
        image.name = base;
        image.arch = opts.arch;
        image.profile = entry.profile;

        for (const auto& [key, value] : entry.constant_defaults) {
            image.constants.set(key, value);
        }
        for (const auto& [key, value] : opts.defines) {
            image.constants.set(key, value);
        }
        for (size_t i = 0; i < template_args.size(); i++) {
            image.constants.set(entry.template_params[i], template_args[i]);
        }

        for (const std::string& required : entry.required_constants) {
            if (!image.constants.contains(required)) {
                throw CompileError(
                    "compilation of kernel '" + base + "' (" + file_name_ + ") failed",
                    result.log + file_name_ + ": error: identifier '" + required
                        + "' is undefined (add -D" + required + "=... or a template argument)");
            }
        }

        // Element type: template parameter "real" or define "REAL";
        // defaults to float.
        std::string real = image.constants.get_string_or(
            "real", image.constants.get_string_or("REAL", "float"));
        std::optional<size_t> elem = scalar_type_size(real);
        if (!elem.has_value()) {
            throw CompileError(
                "compilation of kernel '" + base + "' (" + file_name_ + ") failed",
                result.log + file_name_ + ": error: unknown scalar type '" + real + "'");
        }
        image.element_size = *elem;

        if (template_args.empty()) {
            image.lowered_name = base;
        } else {
            image.lowered_name = base + "<" + join(template_args, ", ") + ">";
        }

        estimate_registers(entry, image.constants, image.element_size, 65536, image);

        if (entry.make_impl) {
            try {
                image.impl = entry.make_impl(image.constants);
            } catch (const Error& e) {
                throw CompileError(
                    "compilation of kernel '" + base + "' (" + file_name_ + ") failed",
                    result.log + file_name_ + ": error: " + e.what());
            }
        }

        image.static_shared_memory = static_cast<uint64_t>(
            image.profile.smem_elements_per_thread * static_cast<double>(image.element_size)
            * static_cast<double>(std::max<int64_t>(
                1, image.constants.get_int_or("BLOCK_SIZE_X", 1)
                    * image.constants.get_int_or("BLOCK_SIZE_Y", 1)
                    * image.constants.get_int_or("BLOCK_SIZE_Z", 1))));

        image.ptx = render_ptx(image, opts);
        result.images.push_back(std::move(image));
    }

    // Modeled NVRTC latency: a fixed front-end cost plus per-byte parsing
    // and per-instance code generation. Calibrated so a typical tuned
    // kernel lands near the ~235 ms NVRTC share of the paper's 294 ms
    // first-launch overhead (Fig. 5).
    double seconds = 0.190;
    seconds += static_cast<double>(source_.size()) * 8.0e-6;
    for (const sim::KernelImage& image : result.images) {
        seconds += 0.030 + static_cast<double>(image.ptx.size()) * 2.0e-7;
    }
    result.compile_seconds = seconds;
    return result;
}

struct CompileJob::State {
    mutable std::mutex mutex;
    mutable std::condition_variable cv;
    bool done = false;
    CompileResult result;
    std::exception_ptr error;
};

bool CompileJob::ready() const {
    if (state_ == nullptr) {
        return false;
    }
    std::lock_guard<std::mutex> lock(state_->mutex);
    return state_->done;
}

void CompileJob::wait() const {
    if (state_ == nullptr) {
        throw Error("CompileJob::wait on an invalid job");
    }
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->cv.wait(lock, [this] { return state_->done; });
}

const CompileResult& CompileJob::get() const {
    if (state_ == nullptr) {
        throw Error("CompileJob::get on an invalid job");
    }
    std::unique_lock<std::mutex> lock(state_->mutex);
    state_->cv.wait(lock, [this] { return state_->done; });
    if (state_->error != nullptr) {
        std::rethrow_exception(state_->error);
    }
    return state_->result;
}

CompileJob compile_async(
    Program program,
    std::vector<std::string> options,
    util::ThreadPool* pool) {
    // Force the registries (and the trace recorder) into existence before
    // first touching the pool: the pool's destructor drains jobs at process
    // exit, and those jobs must find the (later-destroyed) singletons still
    // alive.
    register_builtin_kernels();
    trace::ensure_initialized();
    util::ThreadPool& workers = pool != nullptr ? *pool : util::compile_pool();

    if (trace::counters_enabled()) {
        trace::counter("pool.jobs_submitted").add(1);
    }
    const double submitted = trace::host_now_seconds();

    auto state = std::make_shared<CompileJob::State>();
    workers.submit(
        [state, program = std::move(program), options = std::move(options), submitted] {
            if (trace::spans_enabled()) {
                if (int worker = util::ThreadPool::current_worker_index(); worker >= 0) {
                    trace::set_thread_name("compile-worker-" + std::to_string(worker));
                }
                trace::emit_complete(
                    trace::Domain::Host,
                    "compile",
                    "compile.queue_wait",
                    submitted,
                    trace::host_now_seconds() - submitted);
            }
            trace::HostSpan span("compile", "compile.execute");
            CompileResult result;
            std::exception_ptr error;
            try {
                result = program.compile(options);
            } catch (...) {
                error = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lock(state->mutex);
                state->result = std::move(result);
                state->error = error;
                state->done = true;
            }
            state->cv.notify_all();
        });
    return CompileJob(std::move(state));
}

}  // namespace kl::rtc
