#pragma once

#include "microhh/grid.hpp"

namespace kl::microhh {

/// Scalar reference implementations of the tunable kernels: plain triple
/// loops over the interior, calling the shared per-point formulas. Tests
/// compare every tunable configuration's output against these (bit-exact,
/// since both sides evaluate identical expressions per point).

template<typename T>
void advec_u_reference(
    Field3d<T>& ut,
    const Field3d<T>& u,
    T dxi,
    T dyi,
    T dzi);

template<typename T>
void diff_uvw_reference(
    Field3d<T>& ut,
    Field3d<T>& vt,
    Field3d<T>& wt,
    const Field3d<T>& u,
    const Field3d<T>& v,
    const Field3d<T>& w,
    T visc,
    T dxi,
    T dyi,
    T dzi);

extern template void advec_u_reference(Field3d<float>&, const Field3d<float>&, float, float, float);
extern template void advec_u_reference(Field3d<double>&, const Field3d<double>&, double, double, double);
extern template void diff_uvw_reference(
    Field3d<float>&, Field3d<float>&, Field3d<float>&,
    const Field3d<float>&, const Field3d<float>&, const Field3d<float>&,
    float, float, float, float);
extern template void diff_uvw_reference(
    Field3d<double>&, Field3d<double>&, Field3d<double>&,
    const Field3d<double>&, const Field3d<double>&, const Field3d<double>&,
    double, double, double, double);

}  // namespace kl::microhh
