#pragma once

#include <string>

namespace kl::microhh {

/// Registers the MicroHH kernels (advec_u, diff_uvw) with the simulated
/// NVRTC kernel registry: cost-model profiles plus host implementations
/// that execute the tunable work assignment faithfully. Idempotent.
void register_microhh_kernels();

/// CUDA source text of the tunable kernels, as would live in the MicroHH
/// source tree. Parsed by the simulated NVRTC and embedded into captures.
const std::string& advec_u_source();
const std::string& diff_uvw_source();

/// Ghost-cell geometry constants shared with Grid (compile-time constants
/// of the kernel sources).
inline constexpr int kKernelGhostX = 3;
inline constexpr int kKernelGhostY = 3;
inline constexpr int kKernelGhostZ = 1;

}  // namespace kl::microhh
