#include "microhh/grid.hpp"

#include <cmath>

namespace kl::microhh {

template<typename T>
void Field3d<T>::fill_turbulent(uint64_t seed, double amplitude) {
    Rng rng(seed);
    // Random phases for a handful of modes keep the field smooth but
    // non-trivial; a little white noise on top breaks symmetries.
    const double phase1 = rng.next_double(0, 2 * M_PI);
    const double phase2 = rng.next_double(0, 2 * M_PI);
    const double phase3 = rng.next_double(0, 2 * M_PI);

    const int icells = grid_.icells();
    const int jcells = grid_.jcells();
    const int kcells = grid_.kcells();
    const double fx = 2.0 * M_PI / grid_.itot;
    const double fy = 2.0 * M_PI / grid_.jtot;
    const double fz = 2.0 * M_PI / grid_.ktot;

    size_t n = 0;
    for (int k = 0; k < kcells; k++) {
        for (int j = 0; j < jcells; j++) {
            for (int i = 0; i < icells; i++, n++) {
                double x = (i - kGhostX) * fx;
                double y = (j - kGhostY) * fy;
                double z = (k - kGhostZ) * fz;
                double value = std::sin(x + phase1) * std::cos(2 * y + phase2)
                    + 0.5 * std::cos(3 * z + phase3) * std::sin(y)
                    + 0.25 * std::sin(2 * x) * std::sin(z)
                    + 0.05 * rng.next_gaussian();
                data_[n] = static_cast<T>(amplitude * value);
            }
        }
    }
}

template class Field3d<float>;
template class Field3d<double>;

}  // namespace kl::microhh
