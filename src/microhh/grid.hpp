#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/errors.hpp"
#include "util/rng.hpp"

namespace kl::microhh {

/// Ghost-cell widths of the simulation fields. The advection kernel's
/// fifth-order x-interpolation needs three ghost cells in x (and the
/// cross terms one in y/z); we pad y like x to keep rows aligned, and z
/// with a single layer, matching the layout whose field sizes reproduce
/// the capture sizes in the paper's Table 3.
inline constexpr int kGhostX = 3;
inline constexpr int kGhostY = 3;
inline constexpr int kGhostZ = 1;

/// A 3D computational grid (interior extent plus ghost cells) in
/// x-fastest, row-major layout, the layout of MicroHH fields.
struct Grid {
    int itot = 0;  ///< interior points along x
    int jtot = 0;  ///< interior points along y
    int ktot = 0;  ///< interior points along z
    double xsize = 1.0, ysize = 1.0, zsize = 1.0;

    Grid() = default;
    Grid(int itot_, int jtot_, int ktot_): itot(itot_), jtot(jtot_), ktot(ktot_) {
        if (itot <= 0 || jtot <= 0 || ktot <= 0) {
            throw Error("grid extents must be positive");
        }
    }

    int icells() const noexcept {
        return itot + 2 * kGhostX;
    }
    int jcells() const noexcept {
        return jtot + 2 * kGhostY;
    }
    int kcells() const noexcept {
        return ktot + 2 * kGhostZ;
    }

    /// Stride between consecutive y rows.
    int64_t jstride() const noexcept {
        return icells();
    }
    /// Stride between consecutive z planes.
    int64_t kstride() const noexcept {
        return static_cast<int64_t>(icells()) * jcells();
    }

    /// Total cells including ghosts (= device field length).
    int64_t ncells() const noexcept {
        return kstride() * kcells();
    }

    /// Flat index of interior point (i, j, k), 0-based interior coords.
    int64_t index(int i, int j, int k) const noexcept {
        return (static_cast<int64_t>(k + kGhostZ) * jcells() + (j + kGhostY)) * icells()
            + (i + kGhostX);
    }

    double dx() const noexcept {
        return xsize / itot;
    }
    double dy() const noexcept {
        return ysize / jtot;
    }
    double dz() const noexcept {
        return zsize / ktot;
    }

    std::string to_string() const {
        return std::to_string(itot) + "x" + std::to_string(jtot) + "x" + std::to_string(ktot);
    }
};

/// Host-side field with ghost cells, matching the device layout.
template<typename T>
class Field3d {
  public:
    explicit Field3d(const Grid& grid):
        grid_(grid),
        data_(static_cast<size_t>(grid.ncells()), T(0)) {}

    const Grid& grid() const noexcept {
        return grid_;
    }

    T* data() noexcept {
        return data_.data();
    }
    const T* data() const noexcept {
        return data_.data();
    }
    size_t size() const noexcept {
        return data_.size();
    }
    const std::vector<T>& vec() const noexcept {
        return data_;
    }
    std::vector<T>& vec() noexcept {
        return data_;
    }

    T& at(int i, int j, int k) noexcept {
        return data_[static_cast<size_t>(grid_.index(i, j, k))];
    }
    const T& at(int i, int j, int k) const noexcept {
        return data_[static_cast<size_t>(grid_.index(i, j, k))];
    }

    /// Fills interior *and* ghost cells with a smooth, deterministic flow
    /// field (superposed sinusoids plus seeded noise) so stencils have
    /// meaningful data everywhere without a boundary-exchange step.
    void fill_turbulent(uint64_t seed, double amplitude = 1.0);

  private:
    Grid grid_;
    std::vector<T> data_;
};

extern template class Field3d<float>;
extern template class Field3d<double>;

}  // namespace kl::microhh
