#include "microhh/reference.hpp"

#include "microhh/stencil_math.hpp"

namespace kl::microhh {

template<typename T>
void advec_u_reference(Field3d<T>& ut, const Field3d<T>& u, T dxi, T dyi, T dzi) {
    const Grid& grid = u.grid();
    const int64_t ii = 1;
    const int64_t jj = grid.jstride();
    const int64_t kk = grid.kstride();
    const T* up = u.data();
    T* utp = ut.data();
    for (int k = 0; k < grid.ktot; k++) {
        for (int j = 0; j < grid.jtot; j++) {
            const int64_t row = grid.index(0, j, k);
            for (int i = 0; i < grid.itot; i++) {
                const int64_t ijk = row + i;
                utp[ijk] = advec_u_point<T>(up, ijk, ii, jj, kk, dxi, dyi, dzi);
            }
        }
    }
}

template<typename T>
void diff_uvw_reference(
    Field3d<T>& ut,
    Field3d<T>& vt,
    Field3d<T>& wt,
    const Field3d<T>& u,
    const Field3d<T>& v,
    const Field3d<T>& w,
    T visc,
    T dxi,
    T dyi,
    T dzi) {
    const Grid& grid = u.grid();
    const int64_t ii = 1;
    const int64_t jj = grid.jstride();
    const int64_t kk = grid.kstride();
    for (int k = 0; k < grid.ktot; k++) {
        for (int j = 0; j < grid.jtot; j++) {
            const int64_t row = grid.index(0, j, k);
            for (int i = 0; i < grid.itot; i++) {
                const int64_t ijk = row + i;
                diff_uvw_point<T>(
                    ut.data()[ijk], vt.data()[ijk], wt.data()[ijk], u.data(), v.data(),
                    w.data(), ijk, ii, jj, kk, visc, dxi, dyi, dzi);
            }
        }
    }
}

template void advec_u_reference(Field3d<float>&, const Field3d<float>&, float, float, float);
template void advec_u_reference(Field3d<double>&, const Field3d<double>&, double, double, double);
template void diff_uvw_reference(
    Field3d<float>&, Field3d<float>&, Field3d<float>&,
    const Field3d<float>&, const Field3d<float>&, const Field3d<float>&,
    float, float, float, float);
template void diff_uvw_reference(
    Field3d<double>&, Field3d<double>&, Field3d<double>&,
    const Field3d<double>&, const Field3d<double>&, const Field3d<double>&,
    double, double, double, double);

}  // namespace kl::microhh
