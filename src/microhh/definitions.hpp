#pragma once

#include <string>

#include "core/kernel_def.hpp"

namespace kl::microhh {

/// Floating-point precision of a kernel instantiation (the paper tunes
/// float and double variants of each kernel separately).
enum class Precision { Float32, Float64 };

const char* precision_name(Precision p) noexcept;      ///< "float" / "double"
size_t precision_size(Precision p) noexcept;           ///< 4 / 8

/// Tunable kernel definition of advec_u with the full 14-parameter search
/// space of the paper's Table 2 (5^3 block sizes, 3^3 tile factors, 2^6
/// unroll/stride booleans, 6 unravel permutations, 6 launch-bounds values:
/// 7,776,000 configurations before restrictions).
///
/// Argument convention (matching the registered kernel implementation):
///   advec_u(ut, u, dxi, dyi, dzi, itot, jtot, ktot, icells, ijcells)
core::KernelBuilder make_advec_u_builder(Precision precision);

/// Tunable kernel definition of diff_uvw (same search space).
///
///   diff_uvw(ut, vt, wt, u, v, w, visc, dxi, dyi, dzi,
///            itot, jtot, ktot, icells, ijcells)
core::KernelBuilder make_diff_uvw_builder(Precision precision);

/// Kernel name with precision suffix used for wisdom/capture bookkeeping
/// when float and double variants are tuned side by side:
/// e.g. "advec_u_float".
std::string variant_name(const std::string& kernel, Precision precision);

}  // namespace kl::microhh
