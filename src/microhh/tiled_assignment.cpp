#include "microhh/tiled_assignment.hpp"

#include "cudasim/perf_model.hpp"

namespace kl::microhh {

TiledAssignment TiledAssignment::from_constants(const sim::ConstantMap& constants) {
    TiledAssignment out;
    static constexpr const char* axes[3] = {"X", "Y", "Z"};
    for (int a = 0; a < 3; a++) {
        std::string ax = axes[a];
        out.block[a] = constants.get_int("BLOCK_SIZE_" + ax);
        out.tile[a] = constants.get_int_or("TILE_FACTOR_" + ax, 1);
        out.contiguous[a] = constants.get_bool_or("TILE_CONTIGUOUS_" + ax, false);
        if (out.block[a] < 1 || out.tile[a] < 1) {
            throw Error("non-positive block size or tile factor");
        }
    }
    sim::parse_unravel_order(
        constants.get_string_or("UNRAVEL_ORDER", "XYZ"), out.order);
    return out;
}

}  // namespace kl::microhh
