#include "microhh/model.hpp"

#include <cmath>

namespace kl::microhh {

template<typename real>
Model<real>::Model(const Grid& grid, sim::Context& context, Options options):
    grid_(grid),
    context_(&context),
    options_(options),
    u_(static_cast<size_t>(grid.ncells()), context),
    v_(static_cast<size_t>(grid.ncells()), context),
    w_(static_cast<size_t>(grid.ncells()), context),
    ut_(static_cast<size_t>(grid.ncells()), context),
    vt_(static_cast<size_t>(grid.ncells()), context),
    wt_(static_cast<size_t>(grid.ncells()), context),
    advec_(make_advec_u_builder(precision()).build(), options.wisdom),
    diff_(make_diff_uvw_builder(precision()).build(), options.wisdom) {
    Field3d<real> field(grid_);
    field.fill_turbulent(options_.seed, 1.0);
    u_.copy_from_host(field.vec());
    field.fill_turbulent(options_.seed + 1, 0.8);
    v_.copy_from_host(field.vec());
    field.fill_turbulent(options_.seed + 2, 0.4);
    w_.copy_from_host(field.vec());
    ut_.fill_zero();
    vt_.fill_zero();
    wt_.fill_zero();
}

template<typename real>
void Model<real>::step(real dt) {
    const real dxi = static_cast<real>(1.0 / grid_.dx());
    const real dyi = static_cast<real>(1.0 / grid_.dy());
    const real dzi = static_cast<real>(1.0 / grid_.dz());
    const int icells = grid_.icells();
    const int ijcells = static_cast<int>(grid_.kstride());

    // Tendencies from the two tunable kernels.
    advec_.launch(
        ut_, u_, dxi, dyi, dzi, grid_.itot, grid_.jtot, grid_.ktot, icells, ijcells);
    diff_.launch(
        ut_, vt_, wt_, u_, v_, w_, static_cast<real>(options_.viscosity), dxi, dyi, dzi,
        grid_.itot, grid_.jtot, grid_.ktot, icells, ijcells);
    context_->synchronize();

    // Host-side explicit Euler update (only meaningful when the simulator
    // executes kernels functionally).
    if (context_->mode() == sim::ExecutionMode::Functional) {
        std::vector<real> u = u_.copy_to_host();
        std::vector<real> v = v_.copy_to_host();
        std::vector<real> w = w_.copy_to_host();
        std::vector<real> ut = ut_.copy_to_host();
        std::vector<real> vt = vt_.copy_to_host();
        std::vector<real> wt = wt_.copy_to_host();

        double norm = 0;
        for (int k = 0; k < grid_.ktot; k++) {
            for (int j = 0; j < grid_.jtot; j++) {
                const int64_t row = grid_.index(0, j, k);
                for (int i = 0; i < grid_.itot; i++) {
                    const size_t ijk = static_cast<size_t>(row + i);
                    u[ijk] += dt * ut[ijk];
                    v[ijk] += dt * vt[ijk];
                    w[ijk] += dt * wt[ijk];
                    norm += std::abs(static_cast<double>(ut[ijk]));
                }
            }
        }
        last_tendency_norm_ =
            norm / (static_cast<double>(grid_.itot) * grid_.jtot * grid_.ktot);

        u_.copy_from_host(u);
        v_.copy_from_host(v);
        w_.copy_from_host(w);
    }
    steps_++;
}

template<typename real>
Field3d<real> Model<real>::download_u() const {
    Field3d<real> out(grid_);
    out.vec() = u_.copy_to_host();
    return out;
}

template class Model<float>;
template class Model<double>;

}  // namespace kl::microhh
