#pragma once

#include <cstdint>

#include "cudasim/kernel_image.hpp"
#include "util/errors.hpp"

namespace kl::microhh {

/// Faithful emulation of the tunable work assignment of the MicroHH GPU
/// kernels (paper §5.2): thread blocks are launched as a 1D list, each
/// block unravels its id into a 3D block index (per the UNRAVEL_ORDER
/// permutation), covers a (BLOCK*TILE) extent per axis, and each thread
/// processes TILE points per axis either contiguously or block-strided.
///
/// Every grid point must be visited exactly once; the validation tests
/// compare each configuration's output against the scalar reference, so an
/// off-by-one in this indexing (just like in a real tiled CUDA kernel)
/// fails loudly.
struct TiledAssignment {
    int64_t block[3] = {1, 1, 1};
    int64_t tile[3] = {1, 1, 1};
    bool contiguous[3] = {false, false, false};
    int order[3] = {0, 1, 2};  ///< order[0] = fastest-unraveling axis

    static TiledAssignment from_constants(const sim::ConstantMap& constants);

    /// Points covered by one block along axis `a`.
    int64_t span(int a) const noexcept {
        return block[a] * tile[a];
    }

    /// Number of blocks needed along axis `a` for extent `n`.
    int64_t blocks_along(int a, int64_t n) const noexcept {
        return (n + span(a) - 1) / span(a);
    }

    /// Invokes f(i, j, k) for every in-bounds point assigned to the launch
    /// of `total_blocks` blocks over the extents n[3]. Throws CudaError
    /// when the launch grid does not match the assignment (mirroring a
    /// kernel reading garbage when launched with the wrong geometry).
    template<typename F>
    void for_each_point(uint32_t total_blocks, const int64_t n[3], F&& f) const {
        const int64_t nb[3] = {
            blocks_along(0, n[0]), blocks_along(1, n[1]), blocks_along(2, n[2])};
        if (nb[0] * nb[1] * nb[2] != static_cast<int64_t>(total_blocks)) {
            throw CudaError(
                "launch grid (" + std::to_string(total_blocks)
                + " blocks) does not match tiled work assignment ("
                + std::to_string(nb[0] * nb[1] * nb[2]) + " blocks)");
        }

        for (uint32_t bid = 0; bid < total_blocks; bid++) {
            // Unravel the 1D block id into 3D block coordinates in the
            // configured axis order.
            int64_t b3[3];
            int64_t rest = bid;
            for (int pos = 0; pos < 3; pos++) {
                int axis = order[pos];
                b3[axis] = rest % nb[axis];
                rest /= nb[axis];
            }
            const int64_t base[3] = {
                b3[0] * span(0), b3[1] * span(1), b3[2] * span(2)};

            // Iterate the block's points in ascending-coordinate order.
            // Contiguous and block-strided tiling assign the same point
            // *set* to a block — they differ in which thread touches which
            // point, which is a performance property (modeled by the
            // performance model), not a functional one.
            for (int64_t sz = 0; sz < span(2); sz++) {
                const int64_t z = base[2] + sz;
                if (z >= n[2]) {
                    break;
                }
                for (int64_t sy = 0; sy < span(1); sy++) {
                    const int64_t y = base[1] + sy;
                    if (y >= n[1]) {
                        break;
                    }
                    for (int64_t sx = 0; sx < span(0); sx++) {
                        const int64_t x = base[0] + sx;
                        if (x >= n[0]) {
                            break;
                        }
                        f(x, y, z);
                    }
                }
            }
        }
    }
};

}  // namespace kl::microhh
