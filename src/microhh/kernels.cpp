#include "microhh/kernels.hpp"

#include "cudasim/kernel_image.hpp"
#include "microhh/stencil_math.hpp"
#include "microhh/tiled_assignment.hpp"
#include "nvrtcsim/registry.hpp"
#include "util/errors.hpp"

namespace kl::microhh {

namespace {

// ---------------------------------------------------------------------------
// Kernel sources. These are the tunable CUDA kernels as they would appear
// in the MicroHH source tree after the paper's rewrite (§5.2): fully
// parameterized by the Table 2 preprocessor constants. The simulated NVRTC
// validates and "lowers" them to the registered host implementations below.
// ---------------------------------------------------------------------------

const std::string kAdvecSource = R"cuda(
// Advection tendency of u along x: second-order advection scheme with
// fifth-order interpolation (MicroHH advec_2i5, x-term plus cross terms).
//
// Tunable compile-time constants:
//   BLOCK_SIZE_X/Y/Z, TILE_FACTOR_X/Y/Z, UNROLL_X/Y/Z,
//   TILE_CONTIGUOUS_X/Y/Z, UNRAVEL_ORDER, BLOCKS_PER_SM,
//   PROBLEM_SIZE_X/Y/Z
#include "stencil_defines.h"

template <typename real>
__global__ void
__launch_bounds__(BLOCK_SIZE_X * BLOCK_SIZE_Y * BLOCK_SIZE_Z, BLOCKS_PER_SM)
advec_u(real *__restrict__ ut, const real *__restrict__ u,
        real dxi, real dyi, real dzi,
        int itot, int jtot, int ktot, int icells, int ijcells) {
    const int block_id = blockIdx.x;
    int bx, by, bz;
    unravel<UNRAVEL_ORDER>(block_id, bx, by, bz, itot, jtot, ktot);

    KL_TILED_LOOP(i, j, k, bx, by, bz) {
        if (i < itot && j < jtot && k < ktot) {
            const long ijk = (long)(k + KGC) * ijcells + (long)(j + JGC) * icells + (i + IGC);
            ut[ijk] = advec_u_point(u, ijk, 1, icells, ijcells, dxi, dyi, dzi);
        }
    }
}
)cuda";

const std::string kDiffSource = R"cuda(
// Diffusion tendencies of u, v and w: second-order Smagorinsky diffusion
// for large-eddy simulation (element-wise with a one-point halo).
//
// Tunable compile-time constants:
//   BLOCK_SIZE_X/Y/Z, TILE_FACTOR_X/Y/Z, UNROLL_X/Y/Z,
//   TILE_CONTIGUOUS_X/Y/Z, UNRAVEL_ORDER, BLOCKS_PER_SM,
//   PROBLEM_SIZE_X/Y/Z
#include "stencil_defines.h"

template <typename real>
__global__ void
__launch_bounds__(BLOCK_SIZE_X * BLOCK_SIZE_Y * BLOCK_SIZE_Z, BLOCKS_PER_SM)
diff_uvw(real *__restrict__ ut, real *__restrict__ vt, real *__restrict__ wt,
         const real *__restrict__ u, const real *__restrict__ v,
         const real *__restrict__ w,
         real visc, real dxi, real dyi, real dzi,
         int itot, int jtot, int ktot, int icells, int ijcells) {
    const int block_id = blockIdx.x;
    int bx, by, bz;
    unravel<UNRAVEL_ORDER>(block_id, bx, by, bz, itot, jtot, ktot);

    KL_TILED_LOOP(i, j, k, bx, by, bz) {
        if (i < itot && j < jtot && k < ktot) {
            const long ijk = (long)(k + KGC) * ijcells + (long)(j + JGC) * icells + (i + IGC);
            diff_uvw_point(ut[ijk], vt[ijk], wt[ijk], u, v, w, ijk,
                           1, icells, ijcells, visc, dxi, dyi, dzi);
        }
    }
}
)cuda";

// ---------------------------------------------------------------------------
// Host implementations (the "lowered machine code" of the simulated NVRTC).
// They execute the configured work assignment for real and call exactly the
// same per-point formulas as the scalar references in reference.hpp.
// ---------------------------------------------------------------------------

/// Field length implied by the interior extents and ghost geometry.
int64_t field_cells(int itot, int jtot, int ktot) {
    return static_cast<int64_t>(itot + 2 * kKernelGhostX)
        * (jtot + 2 * kKernelGhostY) * (ktot + 2 * kKernelGhostZ);
}

template<typename real>
sim::KernelImage::Impl make_advec_u_impl(const sim::ConstantMap& constants) {
    const TiledAssignment assign = TiledAssignment::from_constants(constants);
    return [assign](const sim::LaunchParams& p) {
        const real dxi = p.scalar<real>(2);
        const real dyi = p.scalar<real>(3);
        const real dzi = p.scalar<real>(4);
        const int itot = p.scalar<int>(5);
        const int jtot = p.scalar<int>(6);
        const int ktot = p.scalar<int>(7);
        const int icells = p.scalar<int>(8);
        const int ijcells = p.scalar<int>(9);

        const size_t cells = static_cast<size_t>(field_cells(itot, jtot, ktot));
        real* ut = p.buffer<real>(0, cells);
        const real* u = p.buffer<real>(1, cells);

        const int64_t n[3] = {itot, jtot, ktot};
        assign.for_each_point(p.grid.x, n, [&](int64_t i, int64_t j, int64_t k) {
            const int64_t ijk = (k + kKernelGhostZ) * ijcells
                + (j + kKernelGhostY) * icells + (i + kKernelGhostX);
            ut[ijk] = advec_u_point<real>(u, ijk, 1, icells, ijcells, dxi, dyi, dzi);
        });
    };
}

template<typename real>
sim::KernelImage::Impl make_diff_uvw_impl(const sim::ConstantMap& constants) {
    const TiledAssignment assign = TiledAssignment::from_constants(constants);
    return [assign](const sim::LaunchParams& p) {
        const real visc = p.scalar<real>(6);
        const real dxi = p.scalar<real>(7);
        const real dyi = p.scalar<real>(8);
        const real dzi = p.scalar<real>(9);
        const int itot = p.scalar<int>(10);
        const int jtot = p.scalar<int>(11);
        const int ktot = p.scalar<int>(12);
        const int icells = p.scalar<int>(13);
        const int ijcells = p.scalar<int>(14);

        const size_t cells = static_cast<size_t>(field_cells(itot, jtot, ktot));
        real* ut = p.buffer<real>(0, cells);
        real* vt = p.buffer<real>(1, cells);
        real* wt = p.buffer<real>(2, cells);
        const real* u = p.buffer<real>(3, cells);
        const real* v = p.buffer<real>(4, cells);
        const real* w = p.buffer<real>(5, cells);

        const int64_t n[3] = {itot, jtot, ktot};
        assign.for_each_point(p.grid.x, n, [&](int64_t i, int64_t j, int64_t k) {
            const int64_t ijk = (k + kKernelGhostZ) * ijcells
                + (j + kKernelGhostY) * icells + (i + kKernelGhostX);
            diff_uvw_point<real>(
                ut[ijk], vt[ijk], wt[ijk], u, v, w, ijk, 1, icells, ijcells, visc, dxi,
                dyi, dzi);
        });
    };
}

template<sim::KernelImage::Impl (*MakeFloat)(const sim::ConstantMap&),
         sim::KernelImage::Impl (*MakeDouble)(const sim::ConstantMap&)>
sim::KernelImage::Impl dispatch_real(const sim::ConstantMap& constants) {
    const std::string real = constants.get_string_or("real", "float");
    if (real == "float") {
        return MakeFloat(constants);
    }
    if (real == "double") {
        return MakeDouble(constants);
    }
    throw Error("unsupported element type '" + real + "' (use float or double)");
}

std::vector<std::string> tunable_constant_names() {
    return {
        "BLOCK_SIZE_X",      "BLOCK_SIZE_Y",      "BLOCK_SIZE_Z",
        "TILE_FACTOR_X",     "TILE_FACTOR_Y",     "TILE_FACTOR_Z",
        "UNROLL_X",          "UNROLL_Y",          "UNROLL_Z",
        "TILE_CONTIGUOUS_X", "TILE_CONTIGUOUS_Y", "TILE_CONTIGUOUS_Z",
        "UNRAVEL_ORDER",     "BLOCKS_PER_SM",
    };
}

}  // namespace

const std::string& advec_u_source() {
    return kAdvecSource;
}

const std::string& diff_uvw_source() {
    return kDiffSource;
}

void register_microhh_kernels() {
    static const bool done = [] {
        rtc::KernelRegistry& registry = rtc::KernelRegistry::global();

        {
            rtc::KernelEntry entry;
            entry.name = "advec_u";
            entry.template_params = {"real"};
            entry.required_constants = tunable_constant_names();
            // Five-point interpolations on two faces plus cross terms:
            // ~64 flops per point (FMA-weighted). One field streamed in,
            // one out; a careless configuration refetches the full
            // (3,1,1)-halo stencil footprint.
            entry.profile.flops_per_point = 64.0;
            entry.profile.reads_ideal = 1.12;
            entry.profile.reads_stream = 11.0;
            entry.profile.writes = 1.0;
            entry.profile.halo[0] = 3;
            entry.profile.halo[1] = 1;
            entry.profile.halo[2] = 1;
            entry.profile.base_registers = 48;
            entry.profile.dp_register_factor = 1.7;
            entry.profile.unroll_register_cost = 5.0;
            entry.make_impl =
                dispatch_real<make_advec_u_impl<float>, make_advec_u_impl<double>>;
            registry.add(std::move(entry));
        }
        {
            rtc::KernelEntry entry;
            entry.name = "diff_uvw";
            entry.template_params = {"real"};
            entry.required_constants = tunable_constant_names();
            // Three Laplacians plus the strain-scaled eddy viscosity:
            // ~66 flops per point across the three outputs. Three fields
            // in, three out, one-point halos on every axis.
            entry.profile.flops_per_point = 66.0;
            entry.profile.reads_ideal = 3.2;
            entry.profile.reads_stream = 21.0;
            entry.profile.writes = 3.0;
            entry.profile.halo[0] = 1;
            entry.profile.halo[1] = 1;
            entry.profile.halo[2] = 1;
            entry.profile.base_registers = 52;
            entry.profile.dp_register_factor = 1.7;
            entry.profile.unroll_register_cost = 5.5;
            entry.make_impl =
                dispatch_real<make_diff_uvw_impl<float>, make_diff_uvw_impl<double>>;
            registry.add(std::move(entry));
        }
        return true;
    }();
    (void) done;
}

}  // namespace kl::microhh
