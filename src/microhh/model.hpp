#pragma once

#include <memory>

#include "core/device_buffer.hpp"
#include "core/wisdom_kernel.hpp"
#include "microhh/definitions.hpp"
#include "microhh/grid.hpp"
#include "microhh/reference.hpp"

namespace kl::microhh {

/// A miniature MicroHH: three velocity fields on a 3D grid, advanced by
/// explicit Euler steps whose tendencies come from the two tunable GPU
/// kernels (advec_u, diff_uvw) launched through Kernel Launcher. Used by
/// the example applications and the end-to-end tests.
template<typename real>
class Model {
  public:
    struct Options {
        double viscosity = 1e-2;
        uint64_t seed = 2023;
        core::WisdomSettings wisdom = core::WisdomSettings::from_env();
    };

    Model(const Grid& grid, sim::Context& context): Model(grid, context, Options()) {}
    Model(const Grid& grid, sim::Context& context, Options options);

    /// Advances the flow by one explicit Euler step of size `dt`:
    /// launches advec_u and diff_uvw through the WisdomKernels, then (in
    /// functional simulation mode) integrates the tendencies on the host.
    void step(real dt);

    const Grid& grid() const noexcept {
        return grid_;
    }

    /// Host copies of the current fields (functional mode only).
    Field3d<real> download_u() const;

    /// Mean absolute tendency of the last step (a cheap stability probe).
    double last_tendency_norm() const noexcept {
        return last_tendency_norm_;
    }

    core::WisdomKernel& advec_kernel() noexcept {
        return advec_;
    }
    core::WisdomKernel& diff_kernel() noexcept {
        return diff_;
    }

    int steps_taken() const noexcept {
        return steps_;
    }

  private:
    static constexpr Precision precision() {
        return sizeof(real) == 4 ? Precision::Float32 : Precision::Float64;
    }

    Grid grid_;
    sim::Context* context_;
    Options options_;

    core::DeviceArray<real> u_, v_, w_;
    core::DeviceArray<real> ut_, vt_, wt_;
    core::WisdomKernel advec_;
    core::WisdomKernel diff_;

    double last_tendency_norm_ = 0;
    int steps_ = 0;
};

extern template class Model<float>;
extern template class Model<double>;

}  // namespace kl::microhh
