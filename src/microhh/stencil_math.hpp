#pragma once

#include <cstdint>

namespace kl::microhh {

/// Per-point stencil formulas shared by the simulated-CUDA kernel
/// implementations and the scalar reference implementations. Both sides
/// call exactly these functions, so for a given input field every
/// configuration of the tunable work assignment must produce bit-identical
/// output — which is what the validation tests assert.

/// Fifth-order interpolation to the half-level between c and d
/// (upwind-biased 5-point formula, as in MicroHH's advec_2i5 scheme).
template<typename T>
inline T interp5(T a, T b, T c, T d, T e) {
    return (T(2) * a - T(13) * b + T(47) * c + T(27) * d - T(3) * e) * (T(1) / T(60));
}

/// Advection tendency of u along x with fifth-order interpolated face
/// values, plus second-order cross terms in y and z. `ii/jj/kk` are the
/// element strides along x/y/z.
template<typename T>
inline T advec_u_point(
    const T* u,
    int64_t ijk,
    int64_t ii,
    int64_t jj,
    int64_t kk,
    T dxi,
    T dyi,
    T dzi) {
    const T uc = u[ijk];
    // Face values at i+1/2 and i-1/2 via 5th-order interpolation.
    const T face_r = interp5(u[ijk - 2 * ii], u[ijk - ii], uc, u[ijk + ii], u[ijk + 2 * ii]);
    const T face_l = interp5(u[ijk - 3 * ii], u[ijk - 2 * ii], u[ijk - ii], uc, u[ijk + ii]);
    const T adv_x =
        ((uc + u[ijk + ii]) * face_r - (u[ijk - ii] + uc) * face_l) * (T(0.5) * dxi);
    // Second-order conservative-flavored cross terms.
    const T adv_y = (u[ijk + jj] - u[ijk - jj]) * (u[ijk + jj] + u[ijk - jj] + uc)
        * (T(0.25) * dyi);
    const T adv_z = (u[ijk + kk] - u[ijk - kk]) * (u[ijk + kk] + u[ijk - kk] + uc)
        * (T(0.25) * dzi);
    return -(adv_x + adv_y + adv_z);
}

/// Seven-point Laplacian with per-axis inverse-spacing-squared factors.
template<typename T>
inline T laplacian(
    const T* a,
    int64_t ijk,
    int64_t ii,
    int64_t jj,
    int64_t kk,
    T dxi2,
    T dyi2,
    T dzi2) {
    return (a[ijk + ii] - T(2) * a[ijk] + a[ijk - ii]) * dxi2
        + (a[ijk + jj] - T(2) * a[ijk] + a[ijk - jj]) * dyi2
        + (a[ijk + kk] - T(2) * a[ijk] + a[ijk - kk]) * dzi2;
}

/// Smagorinsky-flavored eddy viscosity at a point: molecular viscosity
/// scaled by (1 + |S|^2) with S the resolved divergence-like strain proxy.
template<typename T>
inline T eddy_viscosity_point(
    const T* u,
    const T* v,
    const T* w,
    int64_t ijk,
    int64_t ii,
    int64_t jj,
    int64_t kk,
    T visc,
    T dxi,
    T dyi,
    T dzi) {
    const T s = (u[ijk + ii] - u[ijk - ii]) * (T(0.5) * dxi)
        + (v[ijk + jj] - v[ijk - jj]) * (T(0.5) * dyi)
        + (w[ijk + kk] - w[ijk - kk]) * (T(0.5) * dzi);
    return visc * (T(1) + s * s);
}

/// Diffusion tendencies of all three velocity components at one point.
template<typename T>
inline void diff_uvw_point(
    T& ut,
    T& vt,
    T& wt,
    const T* u,
    const T* v,
    const T* w,
    int64_t ijk,
    int64_t ii,
    int64_t jj,
    int64_t kk,
    T visc,
    T dxi,
    T dyi,
    T dzi) {
    const T dxi2 = dxi * dxi;
    const T dyi2 = dyi * dyi;
    const T dzi2 = dzi * dzi;
    const T evisc = eddy_viscosity_point(u, v, w, ijk, ii, jj, kk, visc, dxi, dyi, dzi);
    ut = evisc * laplacian(u, ijk, ii, jj, kk, dxi2, dyi2, dzi2);
    vt = evisc * laplacian(v, ijk, ii, jj, kk, dxi2, dyi2, dzi2);
    wt = evisc * laplacian(w, ijk, ii, jj, kk, dxi2, dyi2, dzi2);
}

}  // namespace kl::microhh
