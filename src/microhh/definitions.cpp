#include "microhh/definitions.hpp"

#include "microhh/kernels.hpp"
#include "util/errors.hpp"

namespace kl::microhh {

using core::Expr;
using core::KernelBuilder;
using core::KernelSource;
using core::Value;

const char* precision_name(Precision p) noexcept {
    return p == Precision::Float32 ? "float" : "double";
}

size_t precision_size(Precision p) noexcept {
    return p == Precision::Float32 ? 4 : 8;
}

std::string variant_name(const std::string& kernel, Precision precision) {
    return kernel + "_" + precision_name(precision);
}

namespace {

/// Declares the full Table 2 search space on a builder and wires the
/// common launch geometry: a 3D thread block launched as a 1D grid of
/// ceil(n/span) blocks per axis (span = block * tile), with the unravel
/// permutation turning the 1D block id back into 3D coordinates inside
/// the kernel.
///
/// `px/py/pz` are the problem-size expressions (from scalar arguments).
void declare_table2_space(KernelBuilder& builder, Expr px, Expr py, Expr pz) {
    using core::div_ceil;

    Expr bx = builder.tune("BLOCK_SIZE_X", {16, 32, 64, 128, 256}, 256);
    Expr by = builder.tune("BLOCK_SIZE_Y", {1, 2, 4, 8, 16}, 1);
    Expr bz = builder.tune("BLOCK_SIZE_Z", {1, 2, 4, 8, 16}, 1);
    Expr tx = builder.tune("TILE_FACTOR_X", {1, 2, 4}, 1);
    Expr ty = builder.tune("TILE_FACTOR_Y", {1, 2, 4}, 1);
    Expr tz = builder.tune("TILE_FACTOR_Z", {1, 2, 4}, 1);
    builder.tune("UNROLL_X", {Value(true), Value(false)}, Value(false));
    builder.tune("UNROLL_Y", {Value(true), Value(false)}, Value(false));
    builder.tune("UNROLL_Z", {Value(true), Value(false)}, Value(false));
    builder.tune("TILE_CONTIGUOUS_X", {Value(true), Value(false)}, Value(false));
    builder.tune("TILE_CONTIGUOUS_Y", {Value(true), Value(false)}, Value(false));
    builder.tune("TILE_CONTIGUOUS_Z", {Value(true), Value(false)}, Value(false));
    builder.tune(
        "UNRAVEL_ORDER",
        {Value("XYZ"), Value("XZY"), Value("YXZ"), Value("YZX"), Value("ZXY"),
         Value("ZYX")},
        Value("XYZ"));
    builder.tune("BLOCKS_PER_SM", {1, 2, 3, 4, 5, 6}, 1);

    // Hardware validity: a CUDA thread block holds at most 1024 threads;
    // fewer than a warp wastes the SIMD width outright. These restrictions
    // prune the 7,776,000-point cartesian space to launchable configs.
    builder.restriction(bx * by * bz <= 1024);
    builder.restriction(bx * by * bz >= 32);

    builder.problem_size(px, py, pz);
    builder.block_size(bx, by, bz);

    // 1D launch: total blocks = product of per-axis block counts.
    Expr nbx = div_ceil(core::problem_x, bx * tx);
    Expr nby = div_ceil(core::problem_y, by * ty);
    Expr nbz = div_ceil(core::problem_z, bz * tz);
    builder.grid_size(nbx * nby * nbz, 1, 1);

    // Bake the domain extents into the instance: the kernels use them for
    // unraveling, and the simulator's performance model recovers per-axis
    // block counts from them for 1D launches.
    builder.define("PROBLEM_SIZE_X", core::problem_x);
    builder.define("PROBLEM_SIZE_Y", core::problem_y);
    builder.define("PROBLEM_SIZE_Z", core::problem_z);
}

}  // namespace

KernelBuilder make_advec_u_builder(Precision precision) {
    register_microhh_kernels();
    KernelBuilder builder(
        "advec_u", KernelSource::inline_source("advec_u.cu", advec_u_source()));
    builder.tuning_key(variant_name("advec_u", precision));
    // advec_u(ut, u, dxi, dyi, dzi, itot, jtot, ktot, icells, ijcells)
    declare_table2_space(builder, core::arg5, core::arg6, core::arg7);
    builder.template_args(Expr(precision_name(precision)));
    builder.output_arg(0);  // ut is written, never read
    return builder;
}

KernelBuilder make_diff_uvw_builder(Precision precision) {
    register_microhh_kernels();
    KernelBuilder builder(
        "diff_uvw", KernelSource::inline_source("diff_uvw.cu", diff_uvw_source()));
    builder.tuning_key(variant_name("diff_uvw", precision));
    // diff_uvw(ut, vt, wt, u, v, w, visc, dxi, dyi, dzi,
    //          itot, jtot, ktot, icells, ijcells)
    declare_table2_space(
        builder, Expr::arg(10), Expr::arg(11), Expr::arg(12));
    builder.template_args(Expr(precision_name(precision)));
    builder.output_arg(0).output_arg(1).output_arg(2);  // ut, vt, wt
    return builder;
}

}  // namespace kl::microhh
