#include "rtccache/lock.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>

namespace kl::rtccache {

FileLock::FileLock(const std::string& path, Type type) {
    int fd;
    do {
        fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
        return;  // degrade to unlocked operation
    }
    int rc;
    do {
        rc = ::flock(fd, type == Type::Exclusive ? LOCK_EX : LOCK_SH);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        ::close(fd);
        return;
    }
    fd_ = fd;
}

FileLock::~FileLock() {
    if (fd_ >= 0) {
        // close() releases the flock; no explicit LOCK_UN needed.
        ::close(fd_);
    }
}

}  // namespace kl::rtccache
