#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cudasim/kernel_image.hpp"

namespace kl::rtccache {

/// Version of the on-disk entry layout. It participates in the key hash,
/// so a layout change makes every old entry *miss* (and eventually get
/// evicted) instead of being misread.
inline constexpr int kFormatVersion = 1;

/// Default size bound of a cache directory (KERNEL_LAUNCHER_CACHE_LIMIT).
inline constexpr uint64_t kDefaultLimitBytes = 256ull << 20;

/// What the process is allowed to do with the cache directory
/// (KERNEL_LAUNCHER_CACHE). Off is the default: the disk cache is opt-in.
enum class Mode {
    Off,        ///< never touch the cache directory
    Read,       ///< consume hits, never write (shared read-only caches, CI)
    ReadWrite,  ///< consume hits and persist every successful compile
};

/// Parses "off"/"read"/"readwrite" (case-insensitive; "0"/"false" mean
/// off, "rw"/"on"/"1" mean readwrite, "ro" means read). Throws kl::Error
/// on anything else.
Mode parse_mode(const std::string& text);
const char* mode_name(Mode mode) noexcept;

/// Parses a byte count with an optional K/M/G suffix ("256M", "1g",
/// "1048576"). Throws kl::Error on malformed input.
uint64_t parse_byte_limit(const std::string& text);

/// Cache configuration, read from the environment once
/// (KERNEL_LAUNCHER_CACHE, KERNEL_LAUNCHER_CACHE_DIR,
/// KERNEL_LAUNCHER_CACHE_LIMIT) or constructed explicitly by tests.
struct Settings {
    Mode mode = Mode::Off;
    /// Cache directory; resolved to default_dir() when empty.
    std::string dir;
    uint64_t limit_bytes = kDefaultLimitBytes;

    static Settings from_env();

    /// $XDG_CACHE_HOME/kernel_launcher, else $HOME/.cache/kernel_launcher,
    /// else <system temp>/kernel_launcher_cache.
    static std::string default_dir();

    std::string resolved_dir() const;
};

/// Everything that determines the bytes a compilation produces, §4.5-style:
/// same source + same lowered options + same instantiation + same device
/// architecture → same compiled instance. The stable content hash of these
/// fields (plus kFormatVersion) names the on-disk entry.
struct CacheKey {
    std::string kernel_name;      ///< base __global__ name, e.g. "advec_u"
    std::string device_arch;      ///< device architecture, e.g. "Ampere"
    std::string source;           ///< full CUDA source text
    std::vector<std::string> options;      ///< lowered compile options, in order
    std::string name_expression;  ///< "advec_u<double>" (empty: base name alone)

    /// Stable FNV-1a 64-bit hash over a length-framed serialization of
    /// every field plus the format version. Not cryptographic — good
    /// enough to address a local cache, cheap enough for the launch path.
    uint64_t hash() const;

    /// Entry basename: "klc-" + 16 lowercase hex digits of hash().
    std::string id() const;
};

/// A deserialized cache entry, ready to stage as a module. The host
/// implementation and cost profile are re-resolved from the kernel
/// registry (they are process state, not bytes), so a hit requires the
/// kernel family to be registered — exactly like a compile does.
struct CachedResult {
    sim::KernelImage image;
    std::string log;                     ///< compile log of the original build
    double modeled_compile_seconds = 0;  ///< what the miss path would have paid
    uint64_t entry_bytes = 0;            ///< file size, drives the modeled read cost
};

/// Persistent cross-process cache of compiled kernel instances.
///
/// Layout: one `<dir>/klc-<hash>.json` file per instance — JSON with an
/// embedded checksum — plus a `.lock` sentinel for flock-based writer
/// exclusion and a `quarantine/` subdirectory for damaged entries. Writes
/// are atomic (temp file + rename), so readers never observe a torn
/// entry and need no locks. Reads tolerate arbitrary corruption: a
/// damaged entry is quarantined and reported as a miss, and the caller
/// recompiles — the cache can never turn a compilable kernel into an
/// error. Total size is bounded by LRU eviction on entry mtime (hits
/// re-touch their entry).
///
/// All methods are thread-safe and cheap to construct per use; durable
/// state lives only on disk, observability in the process-wide
/// `kl.cache.disk.*` trace counters.
class DiskCache {
  public:
    explicit DiskCache(Settings settings);

    const Settings& settings() const noexcept {
        return settings_;
    }
    bool readable() const noexcept {
        return settings_.mode != Mode::Off;
    }
    bool writable() const noexcept {
        return settings_.mode == Mode::ReadWrite;
    }

    /// Full path of the entry `key` would occupy.
    std::string entry_path(const CacheKey& key) const;

    /// Probes the cache. Returns the reconstructed result on a hit;
    /// nullopt on a miss, on any corruption (the entry is quarantined
    /// first), or when the kernel family is not registered. Never throws.
    std::optional<CachedResult> load(const CacheKey& key) const;

    /// Persists one successful compile. Atomic and best-effort: I/O
    /// failures are swallowed (counted as kl.cache.disk.write_errors),
    /// and the LRU limit is enforced afterwards. No-op unless writable.
    void store(
        const CacheKey& key,
        const sim::KernelImage& image,
        const std::string& log,
        double compile_seconds) const;

    /// Persists pre-encoded entry text (a network artifact, validated
    /// against `key` first) under the same atomic-write/LRU discipline as
    /// store(). Returns whether the entry landed. No-op unless writable.
    bool store_text(const CacheKey& key, const std::string& text) const;

    // ---- directory-level operations (kl-cache CLI, tests) ----

    struct EntryInfo {
        std::string path;
        std::string id;            ///< "klc-<hex>" basename (without .json)
        std::string kernel;        ///< base kernel name
        std::string lowered_name;  ///< mangled instance name
        std::string arch;          ///< compile arch, e.g. "compute_86"
        std::string device_arch;   ///< device architecture, e.g. "Ampere"
        uint64_t bytes = 0;
        double mtime = 0;
        bool valid = false;
        std::string error;  ///< set when !valid
    };

    /// Parses and checksums every entry in `dir` (read-only; corrupt
    /// entries are reported, not quarantined). Sorted oldest-first.
    static std::vector<EntryInfo> scan(const std::string& dir);

    struct DirStats {
        size_t entries = 0;      ///< valid entries
        uint64_t bytes = 0;      ///< total size of all entries (incl. corrupt)
        size_t corrupt = 0;      ///< entries failing parse/checksum
        size_t quarantined = 0;  ///< files sitting in quarantine/
    };
    static DirStats stats(const std::string& dir);

    /// Evicts least-recently-used entries until the directory holds at
    /// most `limit_bytes`. Returns the number of entries removed.
    static size_t prune(const std::string& dir, uint64_t limit_bytes);

    /// Removes every entry, stale temp file and quarantined file.
    /// Returns the number of files removed.
    static size_t clear(const std::string& dir);

    /// Moves a damaged entry aside into `<dir>/quarantine/` so it cannot
    /// fail again (and `kl-cache` can inspect it). Never throws.
    static void quarantine(const std::string& dir, const std::string& entry_file);

  private:
    Settings settings_;
};

// ---- entry text codec ----
//
// The byte format of one cache entry (checksum-wrapped JSON) is also the
// unit the distributed tier moves around: kl-wisdomd stores and serves
// verbatim entry texts, and a network artifact hit is decoded by exactly
// the code below (docs/DISTRIBUTED.md). Keeping encode/decode/validate as
// free functions guarantees local and remote entries can never drift.

/// Serializes one compiled instance as entry text — precisely the bytes
/// DiskCache::store writes to disk.
std::string encode_entry(
    const CacheKey& key,
    const sim::KernelImage& image,
    const std::string& log,
    double compile_seconds);

/// Outcome of decoding entry text.
enum class EntryDecode {
    Ok,
    Corrupt,       ///< parse/checksum/format/id failure — quarantine-worthy
    Unregistered,  ///< entry is fine but the kernel family is not registered
};

/// Decodes entry text into a CachedResult for `key`. On Corrupt, `error`
/// (when given) receives the human-readable reason.
EntryDecode decode_entry(
    const std::string& text,
    const CacheKey& key,
    CachedResult& out,
    std::string* error = nullptr);

/// Shallow validation of entry text: parse + checksum + format version +
/// id-matches-key fields. Does not require the kernel family to be
/// registered, so the daemon can vet uploads for kernels it never runs.
struct EntryCheck {
    bool valid = false;
    std::string id;      ///< embedded entry id ("" when unreadable)
    std::string kernel;  ///< base kernel name ("" when unreadable)
    std::string error;   ///< reason when !valid
};
EntryCheck validate_entry_text(const std::string& text);

/// Modeled warm-start cost of reading + validating a cache entry of
/// `bytes`: one filesystem round-trip plus parse at memory-ish bandwidth.
/// Replaces the ~230 ms modeled NVRTC latency on the hit path.
double disk_read_seconds(uint64_t bytes);

}  // namespace kl::rtccache
