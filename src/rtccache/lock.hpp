#pragma once

#include <string>

namespace kl::rtccache {

/// RAII advisory file lock (POSIX flock) guarding mutations of a shared
/// cache directory against other *processes*. Locks are taken on a
/// dedicated `.lock` sentinel file, never on entry files, so entry renames
/// stay atomic and lock-free readers are safe.
///
/// flock is per-open-file-description, so two FileLock objects in one
/// process synchronize against each other too — but in-process callers are
/// expected to serialize through DiskCache, which takes at most one lock
/// per operation (flock is not recursive).
///
/// Lock acquisition failures (unwritable directory, exhausted descriptors)
/// degrade to running unlocked rather than throwing: a cache must never
/// turn a compilable kernel into an error. `held()` reports the truth.
class FileLock {
  public:
    enum class Type {
        Shared,     ///< concurrent readers (flock LOCK_SH)
        Exclusive,  ///< single mutator (flock LOCK_EX)
    };

    /// Opens (creating if needed) `path` and blocks until the lock is held.
    FileLock(const std::string& path, Type type);
    ~FileLock();

    FileLock(const FileLock&) = delete;
    FileLock& operator=(const FileLock&) = delete;

    bool held() const noexcept {
        return fd_ >= 0;
    }

  private:
    int fd_ = -1;
};

}  // namespace kl::rtccache
