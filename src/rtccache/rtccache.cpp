#include "rtccache/rtccache.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <filesystem>

#include "nvrtcsim/registry.hpp"
#include "rtccache/lock.hpp"
#include "trace/trace.hpp"
#include "util/errors.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace kl::rtccache {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t fnv1a(uint64_t h, const void* data, size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; i++) {
        h ^= bytes[i];
        h *= kFnvPrime;
    }
    return h;
}

/// Length-framed field hashing: "ab","c" and "a","bc" must not collide.
uint64_t fnv1a_field(uint64_t h, const std::string& field) {
    uint64_t size = field.size();
    h = fnv1a(h, &size, sizeof size);
    return fnv1a(h, field.data(), field.size());
}

std::string hex64(uint64_t value) {
    char buffer[17];
    std::snprintf(buffer, sizeof buffer, "%016llx", static_cast<unsigned long long>(value));
    return std::string(buffer);
}

void bump(const char* name, uint64_t n = 1) {
    if (trace::counters_enabled()) {
        trace::counter(name).add(n);
    }
}

bool is_entry_file(const std::string& path) {
    const std::string name = path_filename(path);
    return starts_with(name, "klc-") && ends_with(name, ".json");
}

std::atomic<uint64_t> g_unique_counter {0};

/// Validates and unwraps one entry file. Throws kl::Error (with a
/// human-readable reason) on any corruption; the caller decides whether
/// to quarantine or just report.
json::Value checked_payload(const std::string& text) {
    json::Value root = json::parse(text);
    if (!root.is_object() || !root.contains("checksum") || !root.contains("payload")) {
        throw Error("not a cache entry (missing checksum/payload)");
    }
    const json::Value& payload = root["payload"];
    const std::string expected = root["checksum"].as_string();
    const std::string actual = hex64(fnv1a_field(kFnvOffset, payload.dump()));
    if (expected != actual) {
        throw Error("checksum mismatch (expected " + expected + ", computed " + actual + ")");
    }
    if (payload.get_int_or("format", -1) != kFormatVersion) {
        throw Error(
            "format version "
            + std::to_string(payload.get_int_or("format", -1)) + " (this build reads "
            + std::to_string(kFormatVersion) + ")");
    }
    return payload;
}

}  // namespace

Mode parse_mode(const std::string& text) {
    std::string value = to_lower(trim(text));
    if (value == "off" || value == "0" || value == "false" || value == "no"
        || value == "none") {
        return Mode::Off;
    }
    if (value == "read" || value == "ro" || value == "readonly") {
        return Mode::Read;
    }
    if (value == "readwrite" || value == "rw" || value == "write" || value == "on"
        || value == "1" || value == "true" || value == "yes") {
        return Mode::ReadWrite;
    }
    throw Error(
        "invalid KERNEL_LAUNCHER_CACHE value '" + text
        + "' (expected off, read or readwrite)");
}

const char* mode_name(Mode mode) noexcept {
    switch (mode) {
        case Mode::Off:
            return "off";
        case Mode::Read:
            return "read";
        case Mode::ReadWrite:
            return "readwrite";
    }
    return "?";
}

uint64_t parse_byte_limit(const std::string& text) {
    std::string value = to_lower(trim(text));
    size_t pos = 0;
    while (pos < value.size() && std::isdigit(static_cast<unsigned char>(value[pos]))) {
        pos++;
    }
    if (pos == 0) {
        throw Error("invalid KERNEL_LAUNCHER_CACHE_LIMIT value '" + text + "'");
    }
    uint64_t number = std::stoull(value.substr(0, pos));
    std::string suffix(trim(value.substr(pos)));
    uint64_t factor = 1;
    if (!suffix.empty()) {
        switch (suffix[0]) {
            case 'k':
                factor = 1ull << 10;
                break;
            case 'm':
                factor = 1ull << 20;
                break;
            case 'g':
                factor = 1ull << 30;
                break;
            default:
                throw Error("invalid KERNEL_LAUNCHER_CACHE_LIMIT value '" + text + "'");
        }
        std::string rest = suffix.substr(1);
        if (rest != "" && rest != "b" && rest != "ib") {
            throw Error("invalid KERNEL_LAUNCHER_CACHE_LIMIT value '" + text + "'");
        }
    }
    return number * factor;
}

Settings Settings::from_env() {
    Settings settings;
    if (auto mode = get_env("KERNEL_LAUNCHER_CACHE")) {
        settings.mode = parse_mode(*mode);
    }
    if (auto dir = get_env("KERNEL_LAUNCHER_CACHE_DIR")) {
        settings.dir = *dir;
    }
    if (auto limit = get_env("KERNEL_LAUNCHER_CACHE_LIMIT")) {
        settings.limit_bytes = parse_byte_limit(*limit);
    }
    return settings;
}

std::string Settings::default_dir() {
    if (auto xdg = get_env("XDG_CACHE_HOME")) {
        return path_join(*xdg, "kernel_launcher");
    }
    if (auto home = get_env("HOME")) {
        return path_join(path_join(*home, ".cache"), "kernel_launcher");
    }
    return path_join(std::filesystem::temp_directory_path().string(), "kernel_launcher_cache");
}

std::string Settings::resolved_dir() const {
    return dir.empty() ? default_dir() : dir;
}

uint64_t CacheKey::hash() const {
    uint64_t h = kFnvOffset;
    int64_t format = kFormatVersion;
    h = fnv1a(h, &format, sizeof format);
    h = fnv1a_field(h, kernel_name);
    h = fnv1a_field(h, device_arch);
    h = fnv1a_field(h, source);
    uint64_t count = options.size();
    h = fnv1a(h, &count, sizeof count);
    for (const std::string& option : options) {
        h = fnv1a_field(h, option);
    }
    h = fnv1a_field(h, name_expression);
    return h;
}

std::string CacheKey::id() const {
    return "klc-" + hex64(hash());
}

double disk_read_seconds(uint64_t bytes) {
    return 1.2e-3 + static_cast<double>(bytes) / 800e6;
}

DiskCache::DiskCache(Settings settings): settings_(std::move(settings)) {}

std::string DiskCache::entry_path(const CacheKey& key) const {
    return path_join(settings_.resolved_dir(), key.id() + ".json");
}

EntryDecode decode_entry(
    const std::string& text,
    const CacheKey& key,
    CachedResult& out,
    std::string* error) {
    json::Value payload;
    try {
        payload = checked_payload(text);
        if (payload["key"].get_string_or("id", "") != key.id()) {
            throw Error("entry id does not match the requested key");
        }
    } catch (const Error& e) {
        if (error != nullptr) {
            *error = e.what();
        }
        return EntryDecode::Corrupt;
    }

    // Reconstruct the kernel image. The host implementation and the cost
    // profile are process state owned by the kernel registry; only the
    // compile *outcome* lives in the entry.
    std::shared_ptr<const rtc::KernelEntry> entry =
        rtc::KernelRegistry::global().find(key.kernel_name);
    if (entry == nullptr) {
        return EntryDecode::Unregistered;
    }
    try {
        const json::Value& result = payload["result"];
        out.image = sim::KernelImage();
        out.image.name = key.kernel_name;
        out.image.lowered_name = result["lowered_name"].as_string();
        out.image.arch = result["arch"].as_string();
        for (const auto& [name, value] : result["constants"].as_object()) {
            out.image.constants.set(name, value.as_string());
        }
        out.image.profile = entry->profile;
        out.image.registers_per_thread =
            static_cast<int>(result["registers_per_thread"].as_int());
        out.image.squeezed_registers =
            static_cast<int>(result["squeezed_registers"].as_int());
        out.image.spilled_registers =
            static_cast<int>(result["spilled_registers"].as_int());
        out.image.static_shared_memory =
            static_cast<uint64_t>(result["static_shared_memory"].as_int());
        out.image.element_size = static_cast<size_t>(result["element_size"].as_int());
        out.image.ptx = result["ptx"].as_string();
        if (entry->make_impl) {
            out.image.impl = entry->make_impl(out.image.constants);
        }
        out.log = result.get_string_or("log", "");
        out.modeled_compile_seconds = result["compile_seconds"].as_double();
        out.entry_bytes = text.size();
        return EntryDecode::Ok;
    } catch (const Error& e) {
        if (error != nullptr) {
            *error = e.what();
        }
        return EntryDecode::Corrupt;
    }
}

EntryCheck validate_entry_text(const std::string& text) {
    EntryCheck check;
    try {
        json::Value payload = checked_payload(text);
        const json::Value& key = payload["key"];
        check.id = key.get_string_or("id", "");
        check.kernel = key.get_string_or("kernel", "");
        if (check.id.empty() || !starts_with(check.id, "klc-")) {
            throw Error("entry has no usable id");
        }
        check.valid = true;
    } catch (const Error& e) {
        check.valid = false;
        check.error = e.what();
    }
    return check;
}

std::optional<CachedResult> DiskCache::load(const CacheKey& key) const {
    if (!readable()) {
        return std::nullopt;
    }
    const std::string path = entry_path(key);
    if (!file_exists(path)) {
        return std::nullopt;
    }
    trace::HostSpan span("cache", "cache.disk.load", {{"entry", key.id()}});

    std::string text;
    try {
        text = read_text_file(path);
    } catch (const Error&) {
        return std::nullopt;  // raced with eviction/clear: a plain miss
    }

    CachedResult out;
    switch (decode_entry(text, key, out)) {
        case EntryDecode::Ok:
            // LRU "use" mark; best-effort (a read-only cache dir is fine).
            try {
                touch_file(path);
            } catch (const Error&) {
            }
            return out;
        case EntryDecode::Unregistered:
            return std::nullopt;  // family not registered in this process
        case EntryDecode::Corrupt:
            // Damaged or foreign bytes: move the file aside so it cannot
            // fail again, and let the caller recompile. Never an error.
            quarantine(settings_.resolved_dir(), path);
            return std::nullopt;
    }
    return std::nullopt;
}

namespace {

/// Light listing for eviction: no parsing, just size + mtime.
struct LightEntry {
    std::string path;
    uint64_t bytes = 0;
    double mtime = 0;
};

std::vector<LightEntry> list_entries(const std::string& dir) {
    std::vector<LightEntry> entries;
    for (const std::string& path : list_directory(dir)) {
        if (!is_entry_file(path)) {
            continue;
        }
        try {
            entries.push_back({path, file_size(path), file_mtime_seconds(path)});
        } catch (const Error&) {
            // raced with concurrent eviction
        }
    }
    return entries;
}

/// Caller holds the directory lock.
size_t evict_over_limit(const std::string& dir, uint64_t limit_bytes) {
    std::vector<LightEntry> entries = list_entries(dir);
    uint64_t total = 0;
    for (const LightEntry& entry : entries) {
        total += entry.bytes;
    }
    if (total <= limit_bytes) {
        return 0;
    }
    std::sort(entries.begin(), entries.end(), [](const LightEntry& a, const LightEntry& b) {
        return a.mtime < b.mtime;
    });
    size_t evicted = 0;
    for (const LightEntry& entry : entries) {
        if (total <= limit_bytes) {
            break;
        }
        try {
            remove_file(entry.path);
            total -= entry.bytes;
            evicted++;
        } catch (const Error&) {
        }
    }
    bump("kl.cache.disk.evicted", evicted);
    return evicted;
}

}  // namespace

std::string encode_entry(
    const CacheKey& key,
    const sim::KernelImage& image,
    const std::string& log,
    double compile_seconds) {
    json::Value key_json = json::Value::object();
    key_json["id"] = key.id();
    key_json["kernel"] = key.kernel_name;
    key_json["device_arch"] = key.device_arch;
    key_json["source_bytes"] = static_cast<uint64_t>(key.source.size());
    json::Value options = json::Value::array();
    for (const std::string& option : key.options) {
        options.push_back(option);
    }
    key_json["options"] = std::move(options);
    key_json["name_expression"] = key.name_expression;

    json::Value result = json::Value::object();
    result["lowered_name"] = image.lowered_name;
    result["arch"] = image.arch;
    json::Value constants = json::Value::object();
    for (const auto& [name, value] : image.constants.all()) {
        constants[name] = value;
    }
    result["constants"] = std::move(constants);
    result["registers_per_thread"] = image.registers_per_thread;
    result["squeezed_registers"] = image.squeezed_registers;
    result["spilled_registers"] = image.spilled_registers;
    result["static_shared_memory"] = image.static_shared_memory;
    result["element_size"] = static_cast<uint64_t>(image.element_size);
    result["log"] = log;
    result["compile_seconds"] = compile_seconds;
    result["ptx"] = image.ptx;

    json::Value payload = json::Value::object();
    payload["format"] = kFormatVersion;
    payload["key"] = std::move(key_json);
    payload["result"] = std::move(result);

    json::Value root = json::Value::object();
    root["checksum"] = hex64(fnv1a_field(kFnvOffset, payload.dump()));
    root["payload"] = std::move(payload);
    return root.dump_pretty(2) + "\n";
}

namespace {

/// Atomic entry write + LRU enforcement; caller already validated `text`.
void write_entry_locked(
    const std::string& dir,
    const std::string& entry_file,
    const std::string& text,
    uint64_t limit_bytes) {
    create_directories(dir);
    FileLock lock(path_join(dir, ".lock"), FileLock::Type::Exclusive);
    const std::string tmp = path_join(
        dir,
        ".tmp-" + std::to_string(::getpid()) + "-"
            + std::to_string(g_unique_counter.fetch_add(1)));
    write_text_file(tmp, text);
    rename_file(tmp, entry_file);
    bump("kl.cache.disk.write");
    evict_over_limit(dir, limit_bytes);
}

}  // namespace

void DiskCache::store(
    const CacheKey& key,
    const sim::KernelImage& image,
    const std::string& log,
    double compile_seconds) const {
    if (!writable()) {
        return;
    }
    trace::HostSpan span("cache", "cache.disk.store", {{"entry", key.id()}});
    try {
        const std::string text = encode_entry(key, image, log, compile_seconds);
        write_entry_locked(settings_.resolved_dir(), entry_path(key), text, settings_.limit_bytes);
    } catch (const Error&) {
        // Best-effort: an unwritable cache never fails a compilation.
        bump("kl.cache.disk.write_errors");
    }
}

bool DiskCache::store_text(const CacheKey& key, const std::string& text) const {
    if (!writable()) {
        return false;
    }
    const EntryCheck check = validate_entry_text(text);
    if (!check.valid || check.id != key.id()) {
        return false;  // never persist bytes that would be quarantined on read
    }
    trace::HostSpan span("cache", "cache.disk.store", {{"entry", key.id()}});
    try {
        write_entry_locked(settings_.resolved_dir(), entry_path(key), text, settings_.limit_bytes);
        return true;
    } catch (const Error&) {
        bump("kl.cache.disk.write_errors");
        return false;
    }
}

std::vector<DiskCache::EntryInfo> DiskCache::scan(const std::string& dir) {
    std::vector<EntryInfo> infos;
    for (const std::string& path : list_directory(dir)) {
        if (!is_entry_file(path)) {
            continue;
        }
        EntryInfo info;
        info.path = path;
        info.id = path_filename(path).substr(0, path_filename(path).size() - 5);
        try {
            info.bytes = file_size(path);
            info.mtime = file_mtime_seconds(path);
            json::Value payload = checked_payload(read_text_file(path));
            const json::Value& key = payload["key"];
            info.kernel = key.get_string_or("kernel", "?");
            info.device_arch = key.get_string_or("device_arch", "?");
            const json::Value& result = payload["result"];
            info.lowered_name = result.get_string_or("lowered_name", "?");
            info.arch = result.get_string_or("arch", "?");
            if (key.get_string_or("id", "") != info.id) {
                throw Error("entry id does not match its file name");
            }
            info.valid = true;
        } catch (const Error& e) {
            info.valid = false;
            info.error = e.what();
        }
        infos.push_back(std::move(info));
    }
    std::sort(infos.begin(), infos.end(), [](const EntryInfo& a, const EntryInfo& b) {
        return a.mtime < b.mtime;
    });
    return infos;
}

DiskCache::DirStats DiskCache::stats(const std::string& dir) {
    DirStats out;
    for (const EntryInfo& info : scan(dir)) {
        out.bytes += info.bytes;
        if (info.valid) {
            out.entries++;
        } else {
            out.corrupt++;
        }
    }
    out.quarantined = list_directory(path_join(dir, "quarantine")).size();
    return out;
}

size_t DiskCache::prune(const std::string& dir, uint64_t limit_bytes) {
    FileLock lock(path_join(dir, ".lock"), FileLock::Type::Exclusive);
    return evict_over_limit(dir, limit_bytes);
}

size_t DiskCache::clear(const std::string& dir) {
    FileLock lock(path_join(dir, ".lock"), FileLock::Type::Exclusive);
    size_t removed = 0;
    auto remove_all = [&](const std::string& sub, bool entries_only) {
        for (const std::string& path : list_directory(sub)) {
            const std::string name = path_filename(path);
            if (entries_only && !is_entry_file(path) && !starts_with(name, ".tmp-")) {
                continue;
            }
            if (name == ".lock") {
                continue;
            }
            try {
                remove_file(path);
                removed++;
            } catch (const Error&) {
            }
        }
    };
    remove_all(dir, /*entries_only=*/true);
    remove_all(path_join(dir, "quarantine"), /*entries_only=*/false);
    return removed;
}

void DiskCache::quarantine(const std::string& dir, const std::string& entry_file) {
    try {
        const std::string qdir = path_join(dir, "quarantine");
        create_directories(qdir);
        const std::string target = path_join(
            qdir,
            path_filename(entry_file) + "." + std::to_string(::getpid()) + "-"
                + std::to_string(g_unique_counter.fetch_add(1)));
        rename_file(entry_file, target);
        bump("kl.cache.disk.quarantined");
        if (trace::spans_enabled()) {
            trace::emit_instant(
                trace::Domain::Host,
                "cache",
                "cache.disk.quarantine",
                trace::host_now_seconds(),
                {{"entry", path_filename(entry_file)}});
        }
    } catch (const Error&) {
        // The damaged file could not be moved (already gone, read-only
        // dir); the caller still treats the probe as a miss.
    }
}

}  // namespace kl::rtccache
