#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kl::util {

/// A small fixed-size worker pool for background jobs (notably the
/// compile-ahead pipeline of WisdomKernel). Tasks are plain
/// `std::function<void()>`; anything a task wants to report — results,
/// errors — must travel through state the task itself owns (e.g. the
/// shared job state of rtc::CompileJob). An exception escaping a task is
/// swallowed, never propagated, since there is no caller to receive it.
///
/// The destructor drains the queue: every task submitted before
/// destruction runs to completion and the workers are joined. Submitting
/// to a pool that is being destroyed throws kl::Error.
class ThreadPool {
  public:
    /// `num_threads == 0` picks a default based on hardware concurrency.
    explicit ThreadPool(size_t num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    void submit(std::function<void()> task);

    size_t worker_count() const noexcept {
        return workers_.size();
    }

    /// Tasks queued but not yet picked up by a worker.
    size_t pending() const;

    /// Blocks until the queue is empty and every worker is idle.
    void wait_idle();

    /// Index of the calling thread within its owning pool ([0,
    /// worker_count)), or -1 when the caller is not a pool worker. Lets
    /// tasks label themselves (e.g. trace thread tracks named
    /// "compile-worker-N") without threading identity through every job.
    static int current_worker_index() noexcept;

  private:
    void worker_loop(int worker_index);

    mutable std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable idle_cv_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    size_t active_ = 0;
    bool stopping_ = false;
};

/// The process-wide pool used for background compilation. Sized from
/// KERNEL_LAUNCHER_THREADS when set, hardware concurrency otherwise.
///
/// Construction order matters: callers that enqueue work touching other
/// process-wide singletons (the rtc kernel registry, the device registry)
/// must force those singletons into existence *before* the first call to
/// compile_pool(), so that the pool — whose destructor drains in-flight
/// jobs — is destroyed first at process exit.
ThreadPool& compile_pool();

}  // namespace kl::util
