#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace kl {

/// Thin, exception-mapped wrappers over <filesystem> plus binary-blob IO.
/// All paths are plain std::string; errors surface as kl::IoError.

bool file_exists(const std::string& path);
void create_directories(const std::string& path);
void remove_file(const std::string& path);
uint64_t file_size(const std::string& path);

/// Atomically replaces `to` with `from` (same filesystem). This is the
/// primitive behind crash-safe cache/wisdom writes: write a temp file,
/// then rename over the destination.
void rename_file(const std::string& from, const std::string& to);

/// Last-modification time as seconds since an arbitrary (but stable within
/// the process) epoch; orders files for LRU eviction.
double file_mtime_seconds(const std::string& path);

/// Bumps the file's modification time to now (an LRU "use" mark).
void touch_file(const std::string& path);

/// Lists regular files in a directory (non-recursive), sorted by name.
/// Returns an empty list when the directory does not exist.
std::vector<std::string> list_directory(const std::string& dir);

std::string read_text_file(const std::string& path);
void write_text_file(const std::string& path, const std::string& content);

std::vector<std::byte> read_binary_file(const std::string& path);
void write_binary_file(const std::string& path, const void* data, size_t size);

/// `getenv` as optional; empty-string values count as unset.
std::optional<std::string> get_env(const std::string& name);

/// Joins two path fragments with exactly one separator.
std::string path_join(const std::string& a, const std::string& b);

/// Final path component ("dir/kernel.json" -> "kernel.json").
std::string path_filename(const std::string& path);

/// Creates a fresh unique directory under the system temp dir; the given
/// prefix aids debugging. The caller owns cleanup.
std::string make_temp_dir(const std::string& prefix);

}  // namespace kl
