#include "util/rng.hpp"

#include <cmath>

namespace kl {

namespace {

uint64_t splitmix64(uint64_t& x) noexcept {
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) noexcept {
    // Seed expansion via splitmix64, per the xoshiro authors' guidance, so
    // that nearby seeds still yield uncorrelated streams.
    uint64_t s = seed;
    for (uint64_t& word : state_) {
        word = splitmix64(s);
    }
}

uint64_t Rng::next() noexcept {
    uint64_t result = rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

uint64_t Rng::next_below(uint64_t bound) noexcept {
    // Lemire's rejection method: unbiased and needs one multiply per draw in
    // the common case.
    uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
        uint64_t threshold = -bound % bound;
        while (low < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            low = static_cast<uint64_t>(m);
        }
    }
    return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::next_between(int64_t lo, int64_t hi) noexcept {
    uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(next_below(range));
}

double Rng::next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
}

double Rng::next_gaussian() noexcept {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 <= 0.0) {
        u1 = 0x1.0p-53;
    }
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

bool Rng::next_bool(double p_true) noexcept {
    return next_double() < p_true;
}

Rng Rng::split() noexcept {
    return Rng(next());
}

uint64_t fnv1a(std::string_view bytes) noexcept {
    uint64_t hash = 0xCBF29CE484222325ull;
    for (char c : bytes) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001B3ull;
    }
    return hash;
}

uint64_t hash_combine(uint64_t seed, uint64_t value) noexcept {
    return seed ^ (value + 0x9E3779B97F4A7C15ull + (seed << 6) + (seed >> 2));
}

}  // namespace kl
