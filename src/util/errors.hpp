#pragma once

#include <stdexcept>
#include <string>

namespace kl {

/// Base class for every error thrown by this project. Catching `kl::Error`
/// catches everything the library raises on purpose.
class Error: public std::runtime_error {
  public:
    explicit Error(std::string message): std::runtime_error(std::move(message)) {}
};

/// Malformed JSON text or a JSON value of an unexpected shape.
class JsonError: public Error {
  public:
    using Error::Error;
};

/// Invalid use of the kernel-definition API (unknown parameter, duplicate
/// tunable, expression referencing a missing argument, ...).
class DefinitionError: public Error {
  public:
    using Error::Error;
};

/// Failure reported by the simulated CUDA driver (bad handle, out-of-bounds
/// copy, invalid launch configuration, ...).
class CudaError: public Error {
  public:
    using Error::Error;
};

/// Runtime-compilation failure; carries the compiler log.
class CompileError: public Error {
  public:
    CompileError(std::string message, std::string log):
        Error(std::move(message)),
        log_(std::move(log)) {}

    const std::string& log() const noexcept {
        return log_;
    }

  private:
    std::string log_;
};

/// Filesystem-level failure (missing capture, unwritable wisdom dir, ...).
class IoError: public Error {
  public:
    using Error::Error;
};

}  // namespace kl
