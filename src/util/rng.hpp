#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace kl {

/// Deterministic 64-bit PRNG (xoshiro256**). Every stochastic component in
/// this project (search strategies, synthetic workloads, modeled timing
/// jitter) draws from an explicitly-seeded Rng so that experiments are
/// bit-reproducible across runs and platforms. `std::mt19937` plus the
/// standard distributions is avoided on purpose: libstdc++/libc++ produce
/// different streams for the same seed.
class Rng {
  public:
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

    /// Uniform 64-bit value.
    uint64_t next() noexcept;

    /// Uniform integer in [0, bound), bias-free. `bound` must be > 0.
    uint64_t next_below(uint64_t bound) noexcept;

    /// Uniform integer in [lo, hi] inclusive.
    int64_t next_between(int64_t lo, int64_t hi) noexcept;

    /// Uniform double in [0, 1).
    double next_double() noexcept;

    /// Uniform double in [lo, hi).
    double next_double(double lo, double hi) noexcept;

    /// Standard normal variate (Box–Muller, no cached spare for simplicity).
    double next_gaussian() noexcept;

    /// Bernoulli draw.
    bool next_bool(double p_true = 0.5) noexcept;

    /// Fisher–Yates shuffle.
    template<typename T>
    void shuffle(std::vector<T>& items) noexcept {
        for (size_t i = items.size(); i > 1; i--) {
            size_t j = static_cast<size_t>(next_below(i));
            using std::swap;
            swap(items[i - 1], items[j]);
        }
    }

    /// Derives an independent child generator; used to give each parallel
    /// component its own stream from one master seed.
    Rng split() noexcept;

  private:
    uint64_t state_[4];
};

/// FNV-1a hash of a byte string; used to derive deterministic sub-seeds from
/// names ("advec_u" + device + config digest, ...).
uint64_t fnv1a(std::string_view bytes) noexcept;

/// Order-dependent hash combiner.
uint64_t hash_combine(uint64_t seed, uint64_t value) noexcept;

}  // namespace kl
