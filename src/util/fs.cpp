#include "util/fs.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/errors.hpp"

namespace kl {

namespace stdfs = std::filesystem;

bool file_exists(const std::string& path) {
    std::error_code ec;
    return stdfs::exists(path, ec);
}

void create_directories(const std::string& path) {
    std::error_code ec;
    stdfs::create_directories(path, ec);
    if (ec) {
        throw IoError("cannot create directory '" + path + "': " + ec.message());
    }
}

void remove_file(const std::string& path) {
    std::error_code ec;
    stdfs::remove(path, ec);
    if (ec) {
        throw IoError("cannot remove '" + path + "': " + ec.message());
    }
}

uint64_t file_size(const std::string& path) {
    std::error_code ec;
    uint64_t size = stdfs::file_size(path, ec);
    if (ec) {
        throw IoError("cannot stat '" + path + "': " + ec.message());
    }
    return size;
}

void rename_file(const std::string& from, const std::string& to) {
    std::error_code ec;
    stdfs::rename(from, to, ec);
    if (ec) {
        throw IoError("cannot rename '" + from + "' to '" + to + "': " + ec.message());
    }
}

double file_mtime_seconds(const std::string& path) {
    std::error_code ec;
    stdfs::file_time_type t = stdfs::last_write_time(path, ec);
    if (ec) {
        throw IoError("cannot stat '" + path + "': " + ec.message());
    }
    using namespace std::chrono;
    return duration<double>(t.time_since_epoch()).count();
}

void touch_file(const std::string& path) {
    std::error_code ec;
    stdfs::last_write_time(path, stdfs::file_time_type::clock::now(), ec);
    if (ec) {
        throw IoError("cannot touch '" + path + "': " + ec.message());
    }
}

std::vector<std::string> list_directory(const std::string& dir) {
    std::vector<std::string> out;
    std::error_code ec;
    stdfs::directory_iterator it(dir, ec);
    if (ec) {
        return out;
    }
    for (const auto& entry : it) {
        if (entry.is_regular_file()) {
            out.push_back(entry.path().string());
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::string read_text_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw IoError("cannot open file for reading: " + path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void write_text_file(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        throw IoError("cannot open file for writing: " + path);
    }
    out << content;
    if (!out) {
        throw IoError("error while writing file: " + path);
    }
}

std::vector<std::byte> read_binary_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in) {
        throw IoError("cannot open file for reading: " + path);
    }
    std::streamsize size = in.tellg();
    in.seekg(0);
    std::vector<std::byte> data(static_cast<size_t>(size));
    if (size > 0 && !in.read(reinterpret_cast<char*>(data.data()), size)) {
        throw IoError("error while reading file: " + path);
    }
    return data;
}

void write_binary_file(const std::string& path, const void* data, size_t size) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        throw IoError("cannot open file for writing: " + path);
    }
    if (size > 0) {
        out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
    }
    if (!out) {
        throw IoError("error while writing file: " + path);
    }
}

std::optional<std::string> get_env(const std::string& name) {
    const char* value = std::getenv(name.c_str());
    if (value == nullptr || *value == '\0') {
        return std::nullopt;
    }
    return std::string(value);
}

std::string path_join(const std::string& a, const std::string& b) {
    return (stdfs::path(a) / b).string();
}

std::string path_filename(const std::string& path) {
    return stdfs::path(path).filename().string();
}

std::string make_temp_dir(const std::string& prefix) {
    static std::atomic<uint64_t> counter {0};
    stdfs::path base = stdfs::temp_directory_path();
    for (int attempt = 0; attempt < 100; attempt++) {
        stdfs::path candidate = base
            / (prefix + "-" + std::to_string(::getpid()) + "-"
               + std::to_string(counter.fetch_add(1)));
        std::error_code ec;
        if (stdfs::create_directory(candidate, ec)) {
            return candidate.string();
        }
    }
    throw IoError("cannot create temporary directory with prefix " + prefix);
}

}  // namespace kl
