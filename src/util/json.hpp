#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "util/errors.hpp"

namespace kl::json {

class Value;

using Array = std::vector<Value>;
// std::map keeps object keys sorted, which makes serialized output
// deterministic — important for byte-stable wisdom files and capture hashes.
using Object = std::map<std::string, Value>;

enum class Type { Null, Bool, Int, Double, String, Array, Object };

/// A dynamically-typed JSON value. Integers are kept distinct from doubles
/// so that 64-bit problem sizes and configuration values round-trip exactly.
class Value {
  public:
    Value() noexcept: data_(nullptr) {}
    Value(std::nullptr_t) noexcept: data_(nullptr) {}
    Value(bool v) noexcept: data_(v) {}
    Value(int v) noexcept: data_(static_cast<int64_t>(v)) {}
    Value(unsigned v) noexcept: data_(static_cast<int64_t>(v)) {}
    Value(int64_t v) noexcept: data_(v) {}
    Value(uint64_t v): data_(static_cast<int64_t>(v)) {
        if (v > static_cast<uint64_t>(INT64_MAX)) {
            throw JsonError("uint64 value does not fit in JSON integer");
        }
    }
    Value(double v) noexcept: data_(v) {}
    Value(const char* v): data_(std::string(v)) {}
    Value(std::string v) noexcept: data_(std::move(v)) {}
    Value(std::string_view v): data_(std::string(v)) {}
    Value(Array v) noexcept: data_(std::move(v)) {}
    Value(Object v) noexcept: data_(std::move(v)) {}

    static Value array() {
        return Value(Array {});
    }
    static Value object() {
        return Value(Object {});
    }

    Type type() const noexcept {
        return static_cast<Type>(data_.index());
    }

    bool is_null() const noexcept {
        return type() == Type::Null;
    }
    bool is_bool() const noexcept {
        return type() == Type::Bool;
    }
    bool is_int() const noexcept {
        return type() == Type::Int;
    }
    bool is_double() const noexcept {
        return type() == Type::Double;
    }
    bool is_number() const noexcept {
        return is_int() || is_double();
    }
    bool is_string() const noexcept {
        return type() == Type::String;
    }
    bool is_array() const noexcept {
        return type() == Type::Array;
    }
    bool is_object() const noexcept {
        return type() == Type::Object;
    }

    bool as_bool() const;
    int64_t as_int() const;
    /// Accepts both Int and Double.
    double as_double() const;
    const std::string& as_string() const;
    const Array& as_array() const;
    Array& as_array();
    const Object& as_object() const;
    Object& as_object();

    /// Object access. The const overload throws `JsonError` when the key is
    /// missing; `contains`/`find` are the non-throwing probes.
    Value& operator[](const std::string& key);
    const Value& operator[](const std::string& key) const;
    bool contains(const std::string& key) const;
    const Value* find(const std::string& key) const noexcept;

    /// Array access with bounds checking.
    Value& at(size_t index);
    const Value& at(size_t index) const;
    size_t size() const;
    bool empty() const {
        return size() == 0;
    }

    void push_back(Value v);

    /// Typed lookups with defaults, for tolerant readers of on-disk formats.
    int64_t get_int_or(const std::string& key, int64_t fallback) const;
    double get_double_or(const std::string& key, double fallback) const;
    std::string get_string_or(const std::string& key, std::string fallback) const;
    bool get_bool_or(const std::string& key, bool fallback) const;

    bool operator==(const Value& other) const;
    bool operator!=(const Value& other) const {
        return !(*this == other);
    }

    /// Compact single-line serialization.
    std::string dump() const;
    /// Pretty-printed serialization with the given indentation width.
    std::string dump_pretty(int indent = 2) const;

  private:
    std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array, Object> data_;

    void write(std::string& out, int indent, int depth) const;
};

/// Parses JSON text. Throws `JsonError` with line/column context on failure.
Value parse(std::string_view text);

/// Reads and parses a JSON file. Throws `IoError` or `JsonError`.
Value parse_file(const std::string& path);

/// Writes a value to a file (pretty-printed). Throws `IoError`.
void write_file(const std::string& path, const Value& value, int indent = 2);

}  // namespace kl::json
