#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace kl::json {

namespace {

const char* type_name(Type t) {
    switch (t) {
        case Type::Null:
            return "null";
        case Type::Bool:
            return "bool";
        case Type::Int:
            return "int";
        case Type::Double:
            return "double";
        case Type::String:
            return "string";
        case Type::Array:
            return "array";
        case Type::Object:
            return "object";
    }
    return "?";
}

[[noreturn]] void type_error(Type actual, const char* expected) {
    throw JsonError(
        std::string("JSON type mismatch: expected ") + expected + ", found "
        + type_name(actual));
}

}  // namespace

bool Value::as_bool() const {
    if (auto* v = std::get_if<bool>(&data_)) {
        return *v;
    }
    type_error(type(), "bool");
}

int64_t Value::as_int() const {
    if (auto* v = std::get_if<int64_t>(&data_)) {
        return *v;
    }
    type_error(type(), "int");
}

double Value::as_double() const {
    if (auto* v = std::get_if<double>(&data_)) {
        return *v;
    }
    if (auto* v = std::get_if<int64_t>(&data_)) {
        return static_cast<double>(*v);
    }
    type_error(type(), "number");
}

const std::string& Value::as_string() const {
    if (auto* v = std::get_if<std::string>(&data_)) {
        return *v;
    }
    type_error(type(), "string");
}

const Array& Value::as_array() const {
    if (auto* v = std::get_if<Array>(&data_)) {
        return *v;
    }
    type_error(type(), "array");
}

Array& Value::as_array() {
    if (auto* v = std::get_if<Array>(&data_)) {
        return *v;
    }
    type_error(type(), "array");
}

const Object& Value::as_object() const {
    if (auto* v = std::get_if<Object>(&data_)) {
        return *v;
    }
    type_error(type(), "object");
}

Object& Value::as_object() {
    if (auto* v = std::get_if<Object>(&data_)) {
        return *v;
    }
    type_error(type(), "object");
}

Value& Value::operator[](const std::string& key) {
    if (is_null()) {
        data_ = Object {};
    }
    return as_object()[key];
}

const Value& Value::operator[](const std::string& key) const {
    const Object& obj = as_object();
    auto it = obj.find(key);
    if (it == obj.end()) {
        throw JsonError("JSON object has no key '" + key + "'");
    }
    return it->second;
}

bool Value::contains(const std::string& key) const {
    return is_object() && as_object().count(key) != 0;
}

const Value* Value::find(const std::string& key) const noexcept {
    if (!is_object()) {
        return nullptr;
    }
    const Object& obj = *std::get_if<Object>(&data_);
    auto it = obj.find(key);
    return it != obj.end() ? &it->second : nullptr;
}

Value& Value::at(size_t index) {
    Array& arr = as_array();
    if (index >= arr.size()) {
        throw JsonError("JSON array index out of range");
    }
    return arr[index];
}

const Value& Value::at(size_t index) const {
    const Array& arr = as_array();
    if (index >= arr.size()) {
        throw JsonError("JSON array index out of range");
    }
    return arr[index];
}

size_t Value::size() const {
    if (is_array()) {
        return as_array().size();
    }
    if (is_object()) {
        return as_object().size();
    }
    type_error(type(), "array or object");
}

void Value::push_back(Value v) {
    if (is_null()) {
        data_ = Array {};
    }
    as_array().push_back(std::move(v));
}

int64_t Value::get_int_or(const std::string& key, int64_t fallback) const {
    const Value* v = find(key);
    return v != nullptr && v->is_int() ? v->as_int() : fallback;
}

double Value::get_double_or(const std::string& key, double fallback) const {
    const Value* v = find(key);
    return v != nullptr && v->is_number() ? v->as_double() : fallback;
}

std::string Value::get_string_or(const std::string& key, std::string fallback) const {
    const Value* v = find(key);
    return v != nullptr && v->is_string() ? v->as_string() : fallback;
}

bool Value::get_bool_or(const std::string& key, bool fallback) const {
    const Value* v = find(key);
    return v != nullptr && v->is_bool() ? v->as_bool() : fallback;
}

bool Value::operator==(const Value& other) const {
    // Int/double compare numerically so that a value that went through a
    // tool emitting `1.0` still matches `1`.
    if (is_number() && other.is_number() && type() != other.type()) {
        return as_double() == other.as_double();
    }
    return data_ == other.data_;
}

namespace {

void write_escaped(std::string& out, const std::string& s) {
    out += '"';
    for (char c : s) {
        switch (c) {
            case '"':
                out += "\\\"";
                break;
            case '\\':
                out += "\\\\";
                break;
            case '\n':
                out += "\\n";
                break;
            case '\r':
                out += "\\r";
                break;
            case '\t':
                out += "\\t";
                break;
            case '\b':
                out += "\\b";
                break;
            case '\f':
                out += "\\f";
                break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void write_double(std::string& out, double v) {
    if (std::isnan(v) || std::isinf(v)) {
        // JSON has no NaN/Inf; null is the conventional lossy stand-in.
        out += "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    std::string_view repr(buf);
    out += repr;
    // Keep a marker so the value parses back as a double, not an int.
    if (repr.find_first_of(".eE") == std::string_view::npos) {
        out += ".0";
    }
}

void newline_indent(std::string& out, int indent, int depth) {
    if (indent > 0) {
        out += '\n';
        out.append(static_cast<size_t>(indent) * depth, ' ');
    }
}

}  // namespace

void Value::write(std::string& out, int indent, int depth) const {
    switch (type()) {
        case Type::Null:
            out += "null";
            return;
        case Type::Bool:
            out += *std::get_if<bool>(&data_) ? "true" : "false";
            return;
        case Type::Int:
            out += std::to_string(*std::get_if<int64_t>(&data_));
            return;
        case Type::Double:
            write_double(out, *std::get_if<double>(&data_));
            return;
        case Type::String:
            write_escaped(out, *std::get_if<std::string>(&data_));
            return;
        case Type::Array: {
            const Array& arr = *std::get_if<Array>(&data_);
            if (arr.empty()) {
                out += "[]";
                return;
            }
            out += '[';
            bool first = true;
            for (const Value& v : arr) {
                if (!first) {
                    out += indent > 0 ? "," : ", ";
                }
                first = false;
                newline_indent(out, indent, depth + 1);
                v.write(out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out += ']';
            return;
        }
        case Type::Object: {
            const Object& obj = *std::get_if<Object>(&data_);
            if (obj.empty()) {
                out += "{}";
                return;
            }
            out += '{';
            bool first = true;
            for (const auto& [key, v] : obj) {
                if (!first) {
                    out += indent > 0 ? "," : ", ";
                }
                first = false;
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out += ": ";
                v.write(out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out += '}';
            return;
        }
    }
}

std::string Value::dump() const {
    std::string out;
    write(out, 0, 0);
    return out;
}

std::string Value::dump_pretty(int indent) const {
    std::string out;
    write(out, indent, 0);
    out += '\n';
    return out;
}

namespace {

class Parser {
  public:
    explicit Parser(std::string_view text): text_(text) {}

    Value parse_document() {
        Value v = parse_value();
        skip_whitespace();
        if (pos_ != text_.size()) {
            fail("trailing characters after JSON document");
        }
        return v;
    }

  private:
    std::string_view text_;
    size_t pos_ = 0;

    [[noreturn]] void fail(const std::string& what) const {
        size_t line = 1, col = 1;
        for (size_t i = 0; i < pos_ && i < text_.size(); i++) {
            if (text_[i] == '\n') {
                line++;
                col = 1;
            } else {
                col++;
            }
        }
        throw JsonError(
            "JSON parse error at line " + std::to_string(line) + ", column "
            + std::to_string(col) + ": " + what);
    }

    void skip_whitespace() {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
                pos_++;
            } else {
                break;
            }
        }
    }

    char peek() {
        skip_whitespace();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
        }
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) {
            fail(std::string("expected '") + c + "'");
        }
        pos_++;
    }

    bool consume_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) == lit) {
            pos_ += lit.size();
            return true;
        }
        return false;
    }

    Value parse_value() {
        switch (peek()) {
            case '{':
                return parse_object();
            case '[':
                return parse_array();
            case '"':
                return Value(parse_string());
            case 't':
                if (consume_literal("true")) {
                    return Value(true);
                }
                fail("invalid literal");
            case 'f':
                if (consume_literal("false")) {
                    return Value(false);
                }
                fail("invalid literal");
            case 'n':
                if (consume_literal("null")) {
                    return Value(nullptr);
                }
                fail("invalid literal");
            default:
                return parse_number();
        }
    }

    Value parse_object() {
        expect('{');
        Object obj;
        if (peek() == '}') {
            pos_++;
            return Value(std::move(obj));
        }
        while (true) {
            if (peek() != '"') {
                fail("expected object key");
            }
            std::string key = parse_string();
            expect(':');
            obj.emplace(std::move(key), parse_value());
            char c = peek();
            if (c == ',') {
                pos_++;
            } else if (c == '}') {
                pos_++;
                return Value(std::move(obj));
            } else {
                fail("expected ',' or '}'");
            }
        }
    }

    Value parse_array() {
        expect('[');
        Array arr;
        if (peek() == ']') {
            pos_++;
            return Value(std::move(arr));
        }
        while (true) {
            arr.push_back(parse_value());
            char c = peek();
            if (c == ',') {
                pos_++;
            } else if (c == ']') {
                pos_++;
                return Value(std::move(arr));
            } else {
                fail("expected ',' or ']'");
            }
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) {
                fail("unterminated string");
            }
            char c = text_[pos_++];
            if (c == '"') {
                return out;
            }
            if (c == '\\') {
                if (pos_ >= text_.size()) {
                    fail("unterminated escape");
                }
                char esc = text_[pos_++];
                switch (esc) {
                    case '"':
                        out += '"';
                        break;
                    case '\\':
                        out += '\\';
                        break;
                    case '/':
                        out += '/';
                        break;
                    case 'n':
                        out += '\n';
                        break;
                    case 'r':
                        out += '\r';
                        break;
                    case 't':
                        out += '\t';
                        break;
                    case 'b':
                        out += '\b';
                        break;
                    case 'f':
                        out += '\f';
                        break;
                    case 'u': {
                        if (pos_ + 4 > text_.size()) {
                            fail("truncated \\u escape");
                        }
                        unsigned code = 0;
                        for (int i = 0; i < 4; i++) {
                            char h = text_[pos_++];
                            code <<= 4;
                            if (h >= '0' && h <= '9') {
                                code |= static_cast<unsigned>(h - '0');
                            } else if (h >= 'a' && h <= 'f') {
                                code |= static_cast<unsigned>(h - 'a' + 10);
                            } else if (h >= 'A' && h <= 'F') {
                                code |= static_cast<unsigned>(h - 'A' + 10);
                            } else {
                                fail("invalid \\u escape");
                            }
                        }
                        // Encode the code point as UTF-8 (BMP only; surrogate
                        // pairs are not needed by any of our writers).
                        if (code < 0x80) {
                            out += static_cast<char>(code);
                        } else if (code < 0x800) {
                            out += static_cast<char>(0xC0 | (code >> 6));
                            out += static_cast<char>(0x80 | (code & 0x3F));
                        } else {
                            out += static_cast<char>(0xE0 | (code >> 12));
                            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                            out += static_cast<char>(0x80 | (code & 0x3F));
                        }
                        break;
                    }
                    default:
                        fail("invalid escape character");
                }
            } else {
                out += c;
            }
        }
    }

    Value parse_number() {
        size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            pos_++;
        }
        bool is_double = false;
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                pos_++;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
                is_double = true;
                pos_++;
            } else {
                break;
            }
        }
        std::string_view token = text_.substr(start, pos_ - start);
        if (token.empty() || token == "-") {
            fail("invalid number");
        }
        if (!is_double) {
            int64_t v = 0;
            auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), v);
            if (ec == std::errc() && ptr == token.data() + token.size()) {
                return Value(v);
            }
            // Falls through for out-of-range integers, parsed as double.
        }
        double d = 0;
        auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), d);
        if (ec != std::errc() || ptr != token.data() + token.size()) {
            fail("invalid number");
        }
        return Value(d);
    }
};

}  // namespace

Value parse(std::string_view text) {
    return Parser(text).parse_document();
}

Value parse_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw IoError("cannot open file for reading: " + path);
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse(buffer.str());
}

void write_file(const std::string& path, const Value& value, int indent) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        throw IoError("cannot open file for writing: " + path);
    }
    out << value.dump_pretty(indent);
    if (!out) {
        throw IoError("error while writing file: " + path);
    }
}

}  // namespace kl::json
