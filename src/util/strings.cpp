#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>

namespace kl {

std::vector<std::string> split(std::string_view text, char sep) {
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            return out;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::vector<std::string> split_trimmed(std::string_view text, char sep) {
    std::vector<std::string> out;
    for (const std::string& field : split(text, sep)) {
        std::string_view t = trim(field);
        if (!t.empty()) {
            out.emplace_back(t);
        }
    }
    return out;
}

std::string_view trim(std::string_view text) {
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
        begin++;
    }
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        end--;
    }
    return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (size_t i = 0; i < parts.size(); i++) {
        if (i > 0) {
            out += sep;
        }
        out += parts[i];
    }
    return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
    return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

bool iequals(std::string_view a, std::string_view b) {
    return a.size() == b.size()
        && std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
               return std::tolower(static_cast<unsigned char>(x))
                   == std::tolower(static_cast<unsigned char>(y));
           });
}

std::string to_lower(std::string_view text) {
    std::string out(text);
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

bool glob_match(std::string_view pattern, std::string_view text) {
    // Iterative matcher with backtracking over the last `*`.
    size_t p = 0, t = 0;
    size_t star = std::string_view::npos;
    size_t star_t = 0;
    while (t < text.size()) {
        if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
            p++;
            t++;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            star_t = t;
        } else if (star != std::string_view::npos) {
            p = star + 1;
            t = ++star_t;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*') {
        p++;
    }
    return p == pattern.size();
}

std::string format_bytes(uint64_t bytes) {
    static constexpr const char* units[] = {"B", "KB", "MB", "GB", "TB"};
    double value = static_cast<double>(bytes);
    size_t unit = 0;
    while (value >= 1000.0 && unit + 1 < std::size(units)) {
        value /= 1000.0;
        unit++;
    }
    char buf[32];
    if (unit == 0) {
        std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(bytes));
    } else {
        std::snprintf(buf, sizeof buf, "%.1f %s", value, units[unit]);
    }
    return buf;
}

std::string format_duration(double seconds) {
    char buf[32];
    if (seconds < 1e-6) {
        std::snprintf(buf, sizeof buf, "%.1f ns", seconds * 1e9);
    } else if (seconds < 1e-3) {
        std::snprintf(buf, sizeof buf, "%.1f us", seconds * 1e6);
    } else if (seconds < 1.0) {
        std::snprintf(buf, sizeof buf, "%.1f ms", seconds * 1e3);
    } else if (seconds < 120.0) {
        std::snprintf(buf, sizeof buf, "%.1f s", seconds);
    } else {
        std::snprintf(buf, sizeof buf, "%.1f min", seconds / 60.0);
    }
    return buf;
}

}  // namespace kl
