#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/errors.hpp"
#include "util/fs.hpp"

namespace kl::util {

namespace {

size_t default_worker_count() {
    size_t n = std::thread::hardware_concurrency();
    if (n == 0) {
        n = 4;
    }
    return std::clamp<size_t>(n, 2, 16);
}

thread_local int t_worker_index = -1;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
    if (num_threads == 0) {
        num_threads = default_worker_count();
    }
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; i++) {
        workers_.emplace_back([this, i] { worker_loop(static_cast<int>(i)); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) {
        worker.join();
    }
}

void ThreadPool::submit(std::function<void()> task) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) {
            throw Error("ThreadPool::submit on a pool that is shutting down");
        }
        queue_.push_back(std::move(task));
    }
    work_cv_.notify_one();
}

size_t ThreadPool::pending() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

int ThreadPool::current_worker_index() noexcept {
    return t_worker_index;
}

void ThreadPool::worker_loop(int worker_index) {
    t_worker_index = worker_index;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                return;  // stopping and drained
            }
            task = std::move(queue_.front());
            queue_.pop_front();
            active_++;
        }
        try {
            task();
        } catch (...) {
            // Tasks must report failures through their own job state; an
            // escaped exception here has no receiver.
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            active_--;
            if (queue_.empty() && active_ == 0) {
                idle_cv_.notify_all();
            }
        }
    }
}

ThreadPool& compile_pool() {
    static size_t workers = [] {
        if (auto env = get_env("KERNEL_LAUNCHER_THREADS")) {
            long parsed = std::strtol(env->c_str(), nullptr, 10);
            if (parsed > 0) {
                return static_cast<size_t>(parsed);
            }
        }
        return size_t {0};
    }();
    static ThreadPool pool(workers);
    return pool;
}

}  // namespace kl::util
