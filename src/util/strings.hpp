#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace kl {

/// Splits on a single-character separator; empty fields are preserved
/// ("a,,b" -> {"a","","b"}). An empty input yields one empty field.
std::vector<std::string> split(std::string_view text, char sep);

/// Splits and trims each field, dropping fields that become empty. This is
/// the parse used for comma-separated environment variables such as
/// KERNEL_LAUNCHER_CAPTURE.
std::vector<std::string> split_trimmed(std::string_view text, char sep);

std::string_view trim(std::string_view text);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

std::string to_lower(std::string_view text);

/// Glob match supporting `*` (any run) and `?` (any one char); used for the
/// capture filter so `KERNEL_LAUNCHER_CAPTURE=advec_*` captures all advection
/// kernels.
bool glob_match(std::string_view pattern, std::string_view text);

/// "1.5 GB"-style human formatting of byte counts, for reports.
std::string format_bytes(uint64_t bytes);

/// "3.2 ms"/"1.4 s" duration formatting from seconds.
std::string format_duration(double seconds);

}  // namespace kl
