#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "core/kernel_arg.hpp"
#include "core/wisdom.hpp"
#include "core/wisdom_kernel.hpp"
#include "cudasim/context.hpp"

namespace kl::graph {

/// Launch graphs (docs/GRAPHS.md): capture-once/replay-many batched
/// submission of a DAG of WisdomKernel launches, memcpys and memsets.
///
/// The pipeline mirrors CUDA graphs:
///
///     GraphCapture capture;                 // record nodes + dependencies
///     NodeId a = capture.add_memset(...);
///     NodeId b = capture.add_launch(kernel, args, {a});
///     LaunchGraph graph = capture.finish(); // immutable recording
///     GraphExec exec = graph.instantiate(); // resolve configs, lint,
///                                           // compile, marshal — once
///     exec.replay(stream);                  // one locked submission
///
/// Instantiation resolves everything a launch normally pays per call:
/// wisdom-based config selection, compilation (or compile-cache probe),
/// KL003/KL004 lint checks, geometry evaluation and argument marshalling.
/// Replay then submits the whole pre-baked DAG under a single shared lock,
/// honoring the recorded dependencies on the simulated stream timeline.

/// Whether graph capture is enabled (KERNEL_LAUNCHER_GRAPH=off|on, read
/// once; default on). GraphCapture construction throws kl::Error when
/// disabled. set_enabled() overrides the environment, for tests.
bool enabled();
void set_enabled(bool on);

/// Overrides the lint mode the graph data-flow analysis (KL006–KL009,
/// docs/LINTING.md) runs under at instantiation, for tests and benches.
/// Without an override the strictest lint_mode() among the graph's
/// kernels applies (KERNEL_LAUNCHER_LINT for kernel-free graphs).
/// nullopt restores the default resolution.
void set_lint_override(std::optional<core::LintMode> mode);
std::optional<core::LintMode> lint_override();

/// Identifies a node within one capture/graph; assigned densely in
/// recording order, so `deps` can only name already-recorded nodes and the
/// recording order is always a valid topological order.
using NodeId = size_t;

enum class NodeKind {
    Launch,      ///< a WisdomKernel launch
    MemcpyHtoD,  ///< host -> device copy
    MemcpyDtoH,  ///< device -> host copy
    MemcpyDtoD,  ///< device -> device copy
    Memset,      ///< byte fill of device memory
    Upload,      ///< zero-copy payload upload: replay re-binds the block
};

/// One recorded node: the union of everything any node kind needs. An
/// implementation detail of the capture/instantiate pipeline, public only
/// so that LaunchGraph can hold the recording by value.
struct Node {
    NodeKind kind = NodeKind::Launch;
    std::vector<NodeId> deps;
    // Launch
    core::WisdomKernel* kernel = nullptr;
    std::vector<core::KernelArg> args;
    // Memory operations (dst/src are device pointers; MemcpyHtoD reads
    // host_src, MemcpyDtoH writes host_dst — both must stay valid for the
    // lifetime of every GraphExec instantiated from the recording).
    sim::DevicePtr dst = 0;
    sim::DevicePtr src = 0;
    const void* host_src = nullptr;
    void* host_dst = nullptr;
    uint64_t bytes = 0;
    uint8_t fill = 0;
    // Upload: the immutable pool-block snapshot replay re-binds to dst.
    // Unlike MemcpyHtoD's host_src, the recording owns the bytes (shared,
    // refcounted), so the capture-time source may be freed immediately.
    sim::Payload payload;
};

class LaunchGraph;
class GraphExec;

/// Records a DAG of launches and memory operations. Not thread-safe (one
/// capture is built by one thread); the resulting LaunchGraph/GraphExec
/// are where concurrency happens.
class GraphCapture {
  public:
    /// Throws kl::Error when graphs are disabled (KERNEL_LAUNCHER_GRAPH=off).
    GraphCapture();

    /// Records a kernel launch. The kernel object must outlive every
    /// GraphExec instantiated from this recording (it owns the compiled
    /// instances the graph replays).
    NodeId add_launch(
        core::WisdomKernel& kernel,
        std::vector<core::KernelArg> args,
        std::vector<NodeId> deps = {});

    /// Convenience: C++ arguments instead of a pre-built vector.
    template<typename... Ts>
    NodeId add_launch(
        core::WisdomKernel& kernel,
        std::vector<NodeId> deps,
        const Ts&... args) {
        return add_launch(kernel, core::into_args(args...), std::move(deps));
    }

    NodeId add_memcpy_htod(
        sim::DevicePtr dst,
        const void* src,
        uint64_t bytes,
        std::vector<NodeId> deps = {});
    NodeId add_memcpy_dtoh(
        void* dst,
        sim::DevicePtr src,
        uint64_t bytes,
        std::vector<NodeId> deps = {});
    NodeId add_memcpy_dtod(
        sim::DevicePtr dst,
        sim::DevicePtr src,
        uint64_t bytes,
        std::vector<NodeId> deps = {});
    NodeId add_memset(
        sim::DevicePtr dst,
        uint8_t value,
        uint64_t bytes,
        std::vector<NodeId> deps = {});

    /// Records a zero-copy upload: replaying the node re-binds `dst` to
    /// read as `payload` (copy-on-write; docs/MEMORY.md). The payload size
    /// must equal the allocation size of `dst` (whole-block binding).
    /// Capture copies zero payload bytes (`kl.mem.capture.bytes_copied`
    /// stays 0) and replay moves zero bytes (`kl.mem.replay.bytes_copied`
    /// stays 0) — the alternative to add_memcpy_htod, which re-streams
    /// `bytes` from the live host pointer on every functional replay.
    NodeId add_upload(
        sim::DevicePtr dst,
        sim::Payload payload,
        std::vector<NodeId> deps = {});

    /// Convenience: snapshots `dst`'s current contents from the current
    /// context's pool (O(1)) and records an upload of that snapshot.
    NodeId add_upload(sim::DevicePtr dst, std::vector<NodeId> deps = {});

    size_t node_count() const noexcept {
        return nodes_.size();
    }

    /// Seals the recording into an immutable graph. The capture is empty
    /// afterwards and may record a new graph.
    LaunchGraph finish();

  private:
    NodeId add_node(Node node);

    std::vector<Node> nodes_;
    double capture_start_host_ = 0;
};

/// Lazily-computed, shared KL006-KL009 analysis of one recording (the
/// footprints and diagnostics only depend on the immutable node list, so
/// every instantiate() and lint() of the same recording reuses them).
struct GraphAnalysisCache;

/// An immutable recorded DAG. Cheap to copy (shared recording); the
/// executable form is produced by instantiate().
class LaunchGraph {
  public:
    size_t node_count() const noexcept {
        return nodes_->size();
    }

    const std::vector<Node>& nodes() const noexcept {
        return *nodes_;
    }

    /// Resolves every node against the current context: selects configs,
    /// compiles (or waits for) instances, runs lint checks (including the
    /// KL006–KL009 graph data-flow analysis), validates geometry against
    /// the device, precomputes per-node timing and marshals arguments.
    /// Throws where a launch would (compile errors, KL004/KL006 under
    /// KERNEL_LAUNCHER_LINT=error, invalid geometry).
    GraphExec instantiate() const;

    /// Runs only the KL006–KL009 graph data-flow analysis and returns its
    /// findings (deterministic order, never throws on findings). Does not
    /// compile or bake anything. The analysis is computed once per
    /// recording and cached: repeat calls (and instantiate()) reuse it.
    std::vector<analysis::Diagnostic> lint() const;

  private:
    friend class GraphCapture;
    explicit LaunchGraph(std::shared_ptr<const std::vector<Node>> nodes);

    std::shared_ptr<const std::vector<Node>> nodes_;
    std::shared_ptr<GraphAnalysisCache> analysis_;
};

/// An instantiated graph, ready to replay. Copies share one executable
/// (shared state), so a GraphExec may be replayed concurrently from many
/// threads: replays take a shared lock; scalar updates and
/// re-instantiation after WisdomKernel::clear_cache take an exclusive one.
class GraphExec {
  public:
    /// Submits the whole pre-baked DAG to `stream` (default stream when
    /// null) as one batched operation: the host is charged a single launch
    /// overhead, every node is scheduled at the completion of its
    /// dependencies, and (in Functional mode) node effects execute in
    /// recorded order. When any recorded kernel saw a clear_cache since
    /// the last bake, the graph re-instantiates first.
    void replay(sim::Stream* stream = nullptr);

    /// Replaces scalar argument `arg_index` of launch node `node` for all
    /// subsequent replays (KLARAPTOR-style dynamic parameters without
    /// re-capture). The new value must have the same scalar type and must
    /// not change the problem size (that would require a different
    /// compiled instance — capture a new graph instead); geometry and
    /// timing are re-evaluated. Throws kl::Error on any violation.
    template<typename T>
    void update_scalar(NodeId node, size_t arg_index, T value) {
        update_scalar_arg(node, arg_index, core::KernelArg::scalar(value));
    }

    size_t node_count() const noexcept;
    uint64_t replay_count() const noexcept;
    /// 1 for the initial instantiation, plus one per invalidation-driven
    /// re-instantiation.
    uint64_t instantiate_count() const noexcept;
    /// Virtual-clock completion time of the last replay's final node.
    double last_replay_end() const noexcept;

    /// Implementation detail (defined in graph.cpp); public only so the
    /// file-local bake/submit helpers can name the nested types.
    struct BakedNode;
    struct Impl;

  private:
    friend class LaunchGraph;

    explicit GraphExec(std::shared_ptr<Impl> impl): impl_(std::move(impl)) {}

    void update_scalar_arg(NodeId node, size_t arg_index, const core::KernelArg& arg);

    std::shared_ptr<Impl> impl_;
};

}  // namespace kl::graph
