#include "graph/graph.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstring>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>

#include "analysis/diagnostics.hpp"
#include "analysis/graph_lint.hpp"
#include "analysis/lint.hpp"
#include "trace/trace.hpp"
#include "util/errors.hpp"
#include "util/fs.hpp"

namespace kl::graph {

namespace {

/// -1 until initialized from KERNEL_LAUNCHER_GRAPH; otherwise 0/1.
std::atomic<int> g_enabled {-1};

/// -1 means "no override": the graph lint mode resolves from the graph's
/// kernels / the environment. Otherwise the LintMode value to force.
std::atomic<int> g_lint_override {-1};

bool parse_enabled(const std::string& text) {
    std::string lower;
    for (char c : text) {
        if (!std::isspace(static_cast<unsigned char>(c))) {
            lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        }
    }
    if (lower.empty() || lower == "on" || lower == "1" || lower == "true"
        || lower == "yes") {
        return true;
    }
    if (lower == "off" || lower == "0" || lower == "false" || lower == "no") {
        return false;
    }
    throw Error("KERNEL_LAUNCHER_GRAPH: expected on|off, got '" + text + "'");
}

void bump(const char* name, uint64_t n = 1) {
    if (trace::counters_enabled()) {
        trace::counter(name).add(n);
    }
}

}  // namespace

bool enabled() {
    int value = g_enabled.load(std::memory_order_relaxed);
    if (value < 0) {
        bool on = true;
        if (std::optional<std::string> env = get_env("KERNEL_LAUNCHER_GRAPH")) {
            on = parse_enabled(*env);
        }
        value = on ? 1 : 0;
        g_enabled.store(value, std::memory_order_relaxed);
    }
    return value == 1;
}

void set_enabled(bool on) {
    g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

void set_lint_override(std::optional<core::LintMode> mode) {
    g_lint_override.store(
        mode.has_value() ? static_cast<int>(*mode) : -1,
        std::memory_order_relaxed);
}

std::optional<core::LintMode> lint_override() {
    int value = g_lint_override.load(std::memory_order_relaxed);
    if (value < 0) {
        return std::nullopt;
    }
    return static_cast<core::LintMode>(value);
}

// --- GraphCapture -----------------------------------------------------------

GraphCapture::GraphCapture() {
    if (!enabled()) {
        throw Error(
            "launch graphs are disabled (KERNEL_LAUNCHER_GRAPH=off); "
            "use eager WisdomKernel launches instead");
    }
    capture_start_host_ = trace::host_now_seconds();
}

NodeId GraphCapture::add_node(Node node) {
    for (NodeId dep : node.deps) {
        if (dep >= nodes_.size()) {
            throw Error(
                "graph: dependency #" + std::to_string(dep) + " of node #"
                + std::to_string(nodes_.size())
                + " is not a recorded node (dependencies must be recorded first)");
        }
    }
    nodes_.push_back(std::move(node));
    return nodes_.size() - 1;
}

NodeId GraphCapture::add_launch(
    core::WisdomKernel& kernel,
    std::vector<core::KernelArg> args,
    std::vector<NodeId> deps) {
    Node node;
    node.kind = NodeKind::Launch;
    node.deps = std::move(deps);
    node.kernel = &kernel;
    node.args = std::move(args);
    return add_node(std::move(node));
}

NodeId GraphCapture::add_memcpy_htod(
    sim::DevicePtr dst,
    const void* src,
    uint64_t bytes,
    std::vector<NodeId> deps) {
    Node node;
    node.kind = NodeKind::MemcpyHtoD;
    node.deps = std::move(deps);
    node.dst = dst;
    node.host_src = src;
    node.bytes = bytes;
    return add_node(std::move(node));
}

NodeId GraphCapture::add_memcpy_dtoh(
    void* dst,
    sim::DevicePtr src,
    uint64_t bytes,
    std::vector<NodeId> deps) {
    Node node;
    node.kind = NodeKind::MemcpyDtoH;
    node.deps = std::move(deps);
    node.host_dst = dst;
    node.src = src;
    node.bytes = bytes;
    return add_node(std::move(node));
}

NodeId GraphCapture::add_memcpy_dtod(
    sim::DevicePtr dst,
    sim::DevicePtr src,
    uint64_t bytes,
    std::vector<NodeId> deps) {
    Node node;
    node.kind = NodeKind::MemcpyDtoD;
    node.deps = std::move(deps);
    node.dst = dst;
    node.src = src;
    node.bytes = bytes;
    return add_node(std::move(node));
}

NodeId GraphCapture::add_memset(
    sim::DevicePtr dst,
    uint8_t value,
    uint64_t bytes,
    std::vector<NodeId> deps) {
    Node node;
    node.kind = NodeKind::Memset;
    node.deps = std::move(deps);
    node.dst = dst;
    node.fill = value;
    node.bytes = bytes;
    return add_node(std::move(node));
}

NodeId GraphCapture::add_upload(
    sim::DevicePtr dst,
    sim::Payload payload,
    std::vector<NodeId> deps) {
    Node node;
    node.kind = NodeKind::Upload;
    node.deps = std::move(deps);
    node.dst = dst;
    node.bytes = payload.size;
    node.payload = std::move(payload);
    // Recording references the snapshot; zero payload bytes are copied.
    // The counter exists (interned at zero) so tests can pin it.
    if (trace::counters_enabled()) {
        trace::counter("kl.mem.capture.bytes_copied");
    }
    return add_node(std::move(node));
}

NodeId GraphCapture::add_upload(sim::DevicePtr dst, std::vector<NodeId> deps) {
    return add_upload(
        dst, sim::Context::current().memory().snapshot(dst), std::move(deps));
}

LaunchGraph GraphCapture::finish() {
    bump("kl.graph.captures");
    if (trace::spans_enabled()) {
        trace::emit_complete(
            trace::Domain::Host,
            "graph",
            "graph.capture",
            capture_start_host_,
            trace::host_now_seconds() - capture_start_host_,
            {{"nodes", std::to_string(nodes_.size())}});
    }
    auto nodes = std::make_shared<std::vector<Node>>(std::move(nodes_));
    nodes_ = {};
    capture_start_host_ = trace::host_now_seconds();
    return LaunchGraph(std::move(nodes));
}

// --- GraphExec --------------------------------------------------------------

/// One instantiated node: the recorded operands plus everything resolved
/// at bake time (compiled instance, marshalled argument slots, modeled
/// duration). `args` is this executable's own copy — update_scalar mutates
/// it in place, which keeps the `slots` pointers (into the KernelArg
/// inline storage) valid.
struct GraphExec::BakedNode {
    NodeKind kind = NodeKind::Launch;
    std::vector<NodeId> deps;
    // Launch
    core::WisdomKernel* kernel = nullptr;
    std::vector<core::KernelArg> args;
    core::WisdomKernel::BakedLaunch baked;
    std::vector<void*> slots;
    // Memory operations
    sim::DevicePtr dst = 0;
    sim::DevicePtr src = 0;
    const void* host_src = nullptr;
    void* host_dst = nullptr;
    uint64_t bytes = 0;
    uint8_t fill = 0;
    sim::Payload payload;
    // Schedule
    double duration = 0;  ///< modeled seconds on the stream timeline
    const char* span_name = "graph.node";
};

/// The precomputed state the replay-time shadow-memory oracle needs
/// (KERNEL_LAUNCHER_LINT=full): node footprints and the happens-before
/// relation, both invariant across replays, scalar updates and
/// re-instantiations (buffer arguments cannot be updated).
struct GraphShadowPlan {
    std::vector<analysis::NodeFootprint> footprints;
    analysis::Reachability reach;
};

/// The memoized KL006–KL009 analysis of one immutable recording. Computed
/// on the first instantiate()/lint() and shared by every copy of the
/// LaunchGraph, so repeat instantiations pay two atomic loads instead of
/// the full pass. (A kernel source file edited on disk after the first
/// run is not re-parsed — the same staleness window the compile cache
/// accepts.)
struct GraphAnalysisCache {
    std::once_flag once;
    std::vector<analysis::NodeFootprint> footprints;
    std::vector<analysis::Diagnostic> diagnostics;
};

struct GraphExec::Impl {
    std::shared_ptr<const std::vector<Node>> source;
    /// Set once at instantiation under full lint mode, immutable after.
    std::shared_ptr<const GraphShadowPlan> shadow_plan;
    /// Replays hold this shared; update_scalar and invalidation-driven
    /// re-instantiation hold it exclusively.
    mutable std::shared_mutex mutex;
    std::vector<BakedNode> nodes;                                  ///< guarded by mutex
    /// Each kernel recorded in the graph, with the cache epoch its bake
    /// observed; a mismatch against the kernel's live epoch marks the
    /// whole executable stale.
    std::vector<std::pair<core::WisdomKernel*, uint64_t>> epochs;  ///< guarded by mutex
    /// MemoryPool::epoch() at bake time; a mismatch (release_all happened)
    /// marks the executable stale exactly like a kernel cache epoch bump.
    uint64_t mem_epoch = 0;                                        ///< guarded by mutex
    std::atomic<uint64_t> replays {0};
    std::atomic<uint64_t> instantiations {0};
    std::atomic<double> last_end {0};
};

namespace {

/// Wraps a driver/model rejection of a baked launch in the KL003 shape of
/// the static analysis (docs/LINTING.md): graph instantiation is where
/// resource-limit findings surface, since replay submits without checks.
[[noreturn]] void throw_kl003(
    const core::WisdomKernel& kernel,
    const core::Config& config,
    const CudaError& error) {
    analysis::Diagnostic diag;
    diag.code = "KL003";
    diag.severity = analysis::Severity::Error;
    diag.message = std::string(error.what()) + " (baked configuration "
        + config.to_string() + ")";
    diag.kernel = kernel.def().name;
    throw CudaError("graph instantiation failed:\n" + analysis::render_all({diag}));
}

/// Resolves one launch node: compile/select via bake_launch, then validate
/// the geometry (KL003) and precompute the modeled duration and argument
/// slots.
void bake_launch_node(GraphExec::BakedNode& node, sim::Context& context) {
    node.baked = node.kernel->bake_launch(node.args);
    const sim::KernelImage& image = *node.baked.image;
    const core::KernelDef::Geometry& geom = node.baked.geometry;
    try {
        sim::validate_launch_geometry(
            context.device(), image, geom.grid, geom.block, geom.shared_mem_bytes);
        node.duration = context
                            .perf_model()
                            .estimate(
                                context.device(),
                                image,
                                geom.grid,
                                geom.block,
                                geom.shared_mem_bytes)
                            .seconds;
    } catch (const CudaError& e) {
        throw_kl003(*node.kernel, node.baked.config, e);
    }
    node.slots.clear();
    node.slots.reserve(node.args.size());
    for (const core::KernelArg& arg : node.args) {
        node.slots.push_back(const_cast<void*>(arg.slot()));
    }
}

double dtod_seconds(const sim::Context& context, uint64_t bytes) {
    // On-device copies run at full memory bandwidth (read + write), as in
    // Context::memcpy_dtod.
    return 2.0 * static_cast<double>(bytes)
        / (context.device().memory_bandwidth_gbs * 1e9);
}

double memset_seconds(const sim::Context& context, uint64_t bytes) {
    return static_cast<double>(bytes) / (context.device().memory_bandwidth_gbs * 1e9);
}

/// Bounds-checks one memory node's device operands and precomputes its
/// modeled duration. Called at initial bake and again on every rebake —
/// after a MemoryPool::release_all() the recorded pointers are permanently
/// unmapped, so this is where a stale executable fails loudly instead of
/// touching freed blocks.
void validate_memory_node(GraphExec::BakedNode& node, sim::Context& context) {
    switch (node.kind) {
        case NodeKind::Launch:
            break;
        case NodeKind::MemcpyHtoD:
            context.memory().check_range(node.dst, node.bytes);
            node.duration = context.transfer_seconds(node.bytes);
            node.span_name = "graph.memcpy.htod";
            break;
        case NodeKind::MemcpyDtoH:
            context.memory().check_range(node.src, node.bytes);
            node.duration = context.transfer_seconds(node.bytes);
            node.span_name = "graph.memcpy.dtoh";
            break;
        case NodeKind::MemcpyDtoD:
            context.memory().check_range(node.src, node.bytes);
            context.memory().check_range(node.dst, node.bytes);
            node.duration = dtod_seconds(context, node.bytes);
            node.span_name = "graph.memcpy.dtod";
            break;
        case NodeKind::Memset:
            context.memory().check_range(node.dst, node.bytes);
            node.duration = memset_seconds(context, node.bytes);
            node.span_name = "graph.memset";
            break;
        case NodeKind::Upload:
            // Size agreement with the whole allocation is enforced by
            // bind() at replay; here the range must at least be live.
            context.memory().check_range(node.dst, node.bytes);
            node.duration = context.transfer_seconds(node.bytes);
            node.span_name = "graph.upload";
            break;
    }
}

/// Initial bake: copy the recording into executable nodes, resolve every
/// launch, bounds-check every memory operand, and precompute durations.
void instantiate_nodes(
    GraphExec::Impl& impl,
    sim::Context& context,
    const std::vector<Node>& source) {
    impl.nodes.clear();
    impl.nodes.reserve(source.size());
    for (const Node& recorded : source) {
        GraphExec::BakedNode node;
        node.kind = recorded.kind;
        node.deps = recorded.deps;
        node.kernel = recorded.kernel;
        node.args = recorded.args;
        node.dst = recorded.dst;
        node.src = recorded.src;
        node.host_src = recorded.host_src;
        node.host_dst = recorded.host_dst;
        node.bytes = recorded.bytes;
        node.fill = recorded.fill;
        node.payload = recorded.payload;
        if (node.kind == NodeKind::Launch) {
            bake_launch_node(node, context);
            node.span_name = "graph.kernel";
        } else {
            validate_memory_node(node, context);
        }
        impl.nodes.push_back(std::move(node));
    }
}

/// Records which cache epoch each distinct kernel was baked at. Two nodes
/// of one kernel can observe different epochs when a clear_cache races the
/// bake; keeping the smaller one makes the executable read as stale (and
/// re-bake), never as fresh-but-wrong.
void collect_epochs(GraphExec::Impl& impl) {
    impl.epochs.clear();
    for (const GraphExec::BakedNode& node : impl.nodes) {
        if (node.kind != NodeKind::Launch) {
            continue;
        }
        bool found = false;
        for (auto& [kernel, epoch] : impl.epochs) {
            if (kernel == node.kernel) {
                found = true;
                if (node.baked.epoch < epoch) {
                    epoch = node.baked.epoch;
                }
                break;
            }
        }
        if (!found) {
            impl.epochs.emplace_back(node.kernel, node.baked.epoch);
        }
    }
}

bool is_stale(const GraphExec::Impl& impl, sim::Context& context) {
    if (impl.mem_epoch != context.memory().epoch()) {
        return true;
    }
    for (const auto& [kernel, epoch] : impl.epochs) {
        if (kernel->cache_epoch() != epoch) {
            return true;
        }
    }
    return false;
}

/// The lint mode the graph data-flow analysis runs under: the test/bench
/// override when set, otherwise the strictest mode among the graph's
/// kernels (they carry the process settings), otherwise — for graphs of
/// pure memory operations — KERNEL_LAUNCHER_LINT itself.
core::LintMode resolve_lint_mode(const std::vector<Node>& nodes) {
    if (std::optional<core::LintMode> forced = lint_override()) {
        return *forced;
    }
    bool any_launch = false;
    core::LintMode mode = core::LintMode::Off;
    for (const Node& node : nodes) {
        if (node.kind == NodeKind::Launch) {
            any_launch = true;
            mode = std::max(mode, node.kernel->settings().lint_mode());
        }
    }
    if (any_launch) {
        return mode;
    }
    if (std::optional<std::string> env = get_env("KERNEL_LAUNCHER_LINT")) {
        return core::parse_lint_mode(*env);
    }
    return core::LintMode::Warn;
}

/// Fills the per-recording analysis cache on first use.
const GraphAnalysisCache&
ensure_analysis(GraphAnalysisCache& cache, const std::vector<Node>& nodes) {
    std::call_once(cache.once, [&] {
        cache.footprints = analysis::graph_footprints(nodes);
        cache.diagnostics = analysis::lint_footprints(cache.footprints);
    });
    return cache;
}

/// Instantiation-time static pass: KL006–KL009 over the recording
/// (memoized). Returns the cached analysis so full mode can reuse the
/// footprints for the oracle plan.
const GraphAnalysisCache& lint_at_instantiate(
    GraphAnalysisCache& cache,
    const std::vector<Node>& nodes,
    core::LintMode mode) {
    trace::HostSpan span(
        "lint",
        "lint.graph",
        {{"nodes", std::to_string(nodes.size())}});
    const GraphAnalysisCache& cached = ensure_analysis(cache, nodes);
    bump("kl.lint.graph.runs");
    if (trace::counters_enabled()) {
        for (const analysis::Diagnostic& d : cached.diagnostics) {
            if (d.code == "KL006") {
                bump("kl.lint.graph.kl006");
            } else if (d.code == "KL007") {
                bump("kl.lint.graph.kl007");
            } else if (d.code == "KL008") {
                bump("kl.lint.graph.kl008");
            } else if (d.code == "KL009") {
                bump("kl.lint.graph.kl009");
            }
        }
    }
    analysis::enforce(cached.diagnostics, mode, "launch graph");
    return cached;
}

/// Replay-time dynamic cross-check (full mode): sweep the footprints
/// through the shadow memory and refuse to submit a racy DAG. The static
/// pass at instantiation reports the same hazard set, so a conflict here
/// means the static analyzer and the oracle disagree — a bug either way.
void run_shadow_oracle(const GraphShadowPlan& plan) {
    bump("kl.lint.graph.oracle_runs");
    std::vector<analysis::GraphHazard> hazards =
        analysis::oracle_hazards(plan.footprints, plan.reach);
    if (hazards.empty()) {
        return;
    }
    bump("kl.lint.graph.oracle_hazards", hazards.size());
    std::string message =
        "graph replay blocked: the shadow-memory oracle found "
        + std::to_string(hazards.size()) + " unordered conflict(s):";
    for (const analysis::GraphHazard& h : hazards) {
        message += "\n  nodes #" + std::to_string(h.first) + " and #"
            + std::to_string(h.second) + " touch " + h.overlap.to_string() + " ("
            + (h.write_write ? "write/write" : "read/write") + ")";
    }
    throw CudaError(message);
}

/// Functional-mode node effects, in recorded order — byte-for-byte the
/// data movement of the eager Context::memcpy_*/memset_d8/launch paths.
void execute_functional(const GraphExec::BakedNode& node, sim::Context& context) {
    sim::MemoryPool& memory = context.memory();
    switch (node.kind) {
        case NodeKind::Launch: {
            const sim::KernelImage& image = *node.baked.image;
            if (!image.impl) {
                throw CudaError(
                    "kernel '" + image.lowered_name + "' has no implementation");
            }
            sim::LaunchParams params;
            params.context = &context;
            params.grid = node.baked.geometry.grid;
            params.block = node.baked.geometry.block;
            params.shared_mem_bytes = node.baked.geometry.shared_mem_bytes;
            params.constants = &image.constants;
            params.args = node.slots.data();
            params.num_args = node.slots.size();
            image.impl(params);
            break;
        }
        case NodeKind::MemcpyHtoD:
            // The legacy path re-streams the payload bytes from the live
            // host pointer on every replay; kl.mem.replay.bytes_copied is
            // the regression tripwire zero-copy graphs pin to 0.
            std::memcpy(memory.resolve(node.dst, node.bytes), node.host_src, node.bytes);
            bump("kl.mem.replay.bytes_copied", node.bytes);
            break;
        case NodeKind::MemcpyDtoH: {
            const void* host = memory.resolve_if_materialized(node.src, node.bytes);
            if (host != nullptr) {
                std::memcpy(node.host_dst, host, node.bytes);
            } else {
                // Never-touched device memory reads back as zeros.
                std::memset(node.host_dst, 0, node.bytes);
            }
            break;
        }
        case NodeKind::MemcpyDtoD: {
            if (memory.is_materialized(node.src)) {
                // Destination first: a same-block copy's write-side detach
                // must not drop the baseline the source reads from.
                void* to = memory.resolve(node.dst, node.bytes);
                const void* from = memory.resolve_if_materialized(node.src, node.bytes);
                if (from != nullptr) {
                    std::memmove(to, from, node.bytes);
                } else {
                    std::memset(to, 0, node.bytes);
                }
            } else if (memory.is_materialized(node.dst)) {
                std::memset(memory.resolve(node.dst, node.bytes), 0, node.bytes);
            }
            break;
        }
        case NodeKind::Memset:
            if (node.fill != 0 || memory.is_materialized(node.dst)) {
                std::memset(memory.resolve(node.dst, node.bytes), node.fill, node.bytes);
            }
            break;
        case NodeKind::Upload:
            // Zero-copy: re-bind the block to the recorded snapshot. A
            // replay after replay with no intervening write is a no-op
            // (the dirty flag short-circuits). Copies zero bytes; the
            // interned-but-never-bumped replay counter stays 0.
            memory.bind(node.dst, node.payload);
            break;
    }
}

/// The batched submission. Caller holds impl.mutex (shared or exclusive).
void submit_locked(GraphExec::Impl& impl, sim::Context& context, sim::Stream& stream) {
    const bool spans = trace::spans_enabled();
    const double host_start = spans ? trace::host_now_seconds() : 0;

    // One submission: the host pays the fixed launch cost once, no matter
    // how many nodes the graph holds — that is the batching win on the
    // simulated timeline. Root nodes start when both the host has issued
    // the graph and prior stream work has drained.
    context.clock().advance(context.device().launch_overhead_us * 1e-6);
    double t0 = context.clock().now();
    if (stream.busy_until() > t0) {
        t0 = stream.busy_until();
    }

    const bool functional = context.mode() == sim::ExecutionMode::Functional;
    // Functional replay resolves pool blocks to host pointers; holding the
    // reclaim fence shared keeps a concurrent release_all() from unmapping
    // them mid-replay (it waits for the fence, then the epoch bump makes
    // the next replay fail its staleness re-validation loudly).
    std::shared_lock<std::shared_mutex> fence;
    if (functional) {
        fence = std::shared_lock<std::shared_mutex>(context.memory().reclaim_fence());
    }
    uint32_t track = 0;
    if (spans) {
        track = trace::named_track("stream " + std::to_string(stream.id()));
    }

    thread_local std::vector<double> ends;
    ends.assign(impl.nodes.size(), 0);

    double graph_end = t0;
    for (size_t i = 0; i < impl.nodes.size(); i++) {
        const GraphExec::BakedNode& node = impl.nodes[i];
        double start = t0;
        for (NodeId dep : node.deps) {
            if (ends[dep] > start) {
                start = ends[dep];
            }
        }
        if (functional) {
            execute_functional(node, context);
        }
        const double end = start + node.duration;
        ends[i] = end;
        if (end > graph_end) {
            graph_end = end;
        }
        if (spans) {
            trace::Args args;
            if (node.kind == NodeKind::Launch) {
                args.emplace_back("kernel", node.baked.image->lowered_name);
            } else {
                args.emplace_back("bytes", std::to_string(node.bytes));
            }
            trace::emit_complete_on(
                trace::Domain::Sim,
                track,
                "graph",
                node.span_name,
                start,
                node.duration,
                std::move(args));
        }
    }

    stream.extend_to(graph_end);
    impl.last_end.store(graph_end, std::memory_order_relaxed);
    impl.replays.fetch_add(1, std::memory_order_relaxed);
    bump("kl.graph.replays");
    bump("kl.graph.nodes_replayed", impl.nodes.size());
    if (spans) {
        trace::emit_complete(
            trace::Domain::Host,
            "graph",
            "graph.replay",
            host_start,
            trace::host_now_seconds() - host_start,
            {{"nodes", std::to_string(impl.nodes.size())}});
    }
}

/// (Re-)resolves every launch node, re-validates every memory operand and
/// refreshes the epoch table. Caller holds impl.mutex exclusively. After a
/// pool release_all() the recorded device pointers are permanently
/// unmapped, so the re-validation throws instead of letting the replay
/// touch recycled address space.
void rebake_nodes(GraphExec::Impl& impl, sim::Context& context) {
    trace::HostSpan span(
        "graph",
        "graph.instantiate",
        {{"nodes", std::to_string(impl.nodes.size())}});
    for (GraphExec::BakedNode& node : impl.nodes) {
        if (node.kind == NodeKind::Launch) {
            bake_launch_node(node, context);
        } else {
            validate_memory_node(node, context);
        }
    }
    collect_epochs(impl);
    impl.mem_epoch = context.memory().epoch();
    impl.instantiations.fetch_add(1, std::memory_order_relaxed);
    bump("kl.graph.instantiates");
}

}  // namespace

LaunchGraph::LaunchGraph(std::shared_ptr<const std::vector<Node>> nodes):
    nodes_(std::move(nodes)),
    analysis_(std::make_shared<GraphAnalysisCache>()) {}

std::vector<analysis::Diagnostic> LaunchGraph::lint() const {
    return ensure_analysis(*analysis_, *nodes_).diagnostics;
}

GraphExec LaunchGraph::instantiate() const {
    sim::Context& context = sim::Context::current();
    const core::LintMode lint_mode = resolve_lint_mode(*nodes_);
    auto impl = std::make_shared<GraphExec::Impl>();
    impl->source = nodes_;
    {
        trace::HostSpan span(
            "graph",
            "graph.instantiate",
            {{"nodes", std::to_string(nodes_->size())}});
        if (lint_mode != core::LintMode::Off) {
            const GraphAnalysisCache& cached =
                lint_at_instantiate(*analysis_, *nodes_, lint_mode);
            if (lint_mode == core::LintMode::Full) {
                analysis::Reachability reach(cached.footprints);
                impl->shadow_plan = std::make_shared<const GraphShadowPlan>(
                    GraphShadowPlan {cached.footprints, std::move(reach)});
            }
        }
        instantiate_nodes(*impl, context, *nodes_);
        collect_epochs(*impl);
        impl->mem_epoch = context.memory().epoch();
    }
    impl->instantiations.fetch_add(1, std::memory_order_relaxed);
    bump("kl.graph.instantiates");
    return GraphExec(std::move(impl));
}

void GraphExec::replay(sim::Stream* stream) {
    Impl& impl = *impl_;
    sim::Context& context = sim::Context::current();
    if (stream == nullptr) {
        stream = &context.default_stream();
    }

    // Full lint mode: validate this replay against the shadow-memory
    // oracle before submitting anything. The plan is immutable (set once
    // at instantiation), so no lock is needed.
    if (impl.shadow_plan != nullptr) {
        run_shadow_oracle(*impl.shadow_plan);
    }

    {
        std::shared_lock<std::shared_mutex> lock(impl.mutex);
        if (!is_stale(impl, context)) {
            submit_locked(impl, context, *stream);
            return;
        }
    }

    // A recorded kernel saw clear_cache (or the pool saw release_all)
    // since the bake: re-instantiate under the exclusive lock, then replay
    // in the same critical section (concurrent replays that lost the race
    // re-check and proceed shared).
    std::unique_lock<std::shared_mutex> lock(impl.mutex);
    if (is_stale(impl, context)) {
        bump("kl.graph.invalidations");
        rebake_nodes(impl, context);
    }
    submit_locked(impl, context, *stream);
}

void GraphExec::update_scalar_arg(
    NodeId node_id,
    size_t arg_index,
    const core::KernelArg& arg) {
    Impl& impl = *impl_;
    sim::Context& context = sim::Context::current();
    std::unique_lock<std::shared_mutex> lock(impl.mutex);
    if (node_id >= impl.nodes.size()) {
        throw Error("graph: no node #" + std::to_string(node_id));
    }
    BakedNode& node = impl.nodes[node_id];
    if (node.kind != NodeKind::Launch) {
        throw Error("graph: node #" + std::to_string(node_id) + " is not a kernel launch");
    }
    if (arg_index >= node.args.size()) {
        throw Error(
            "graph: node #" + std::to_string(node_id) + " has "
            + std::to_string(node.args.size()) + " arguments, no #"
            + std::to_string(arg_index));
    }
    core::KernelArg& current = node.args[arg_index];
    if (current.is_buffer()) {
        throw Error(
            "graph: argument #" + std::to_string(arg_index) + " of node #"
            + std::to_string(node_id)
            + " is a buffer; only scalar arguments are update-able");
    }
    if (current.type() != arg.type()) {
        throw Error(
            std::string("graph: scalar type mismatch: argument #")
            + std::to_string(arg_index) + " is " + core::scalar_name(current.type())
            + ", update value is " + core::scalar_name(arg.type()));
    }

    const core::KernelArg saved = current;
    current = arg;
    const core::ProblemSize problem = node.kernel->def().eval_problem_size(node.args);
    if (problem != node.baked.geometry.problem) {
        current = saved;
        throw Error(
            "graph: updating argument #" + std::to_string(arg_index)
            + " changes the problem size from "
            + node.baked.geometry.problem.to_string() + " to " + problem.to_string()
            + ", which selects a different compiled instance; capture a new graph");
    }
    try {
        // Geometry expressions may read scalar arguments, so block/grid/
        // shared memory (and with them the modeled duration) can change.
        node.baked.geometry =
            node.kernel->def().eval_geometry(node.baked.config, node.args);
        const sim::KernelImage& image = *node.baked.image;
        sim::validate_launch_geometry(
            context.device(),
            image,
            node.baked.geometry.grid,
            node.baked.geometry.block,
            node.baked.geometry.shared_mem_bytes);
        node.duration = context
                            .perf_model()
                            .estimate(
                                context.device(),
                                image,
                                node.baked.geometry.grid,
                                node.baked.geometry.block,
                                node.baked.geometry.shared_mem_bytes)
                            .seconds;
    } catch (...) {
        current = saved;
        node.baked.geometry =
            node.kernel->def().eval_geometry(node.baked.config, node.args);
        throw;
    }
    bump("kl.graph.scalar_updates");
}

size_t GraphExec::node_count() const noexcept {
    return impl_->source->size();
}

uint64_t GraphExec::replay_count() const noexcept {
    return impl_->replays.load(std::memory_order_relaxed);
}

uint64_t GraphExec::instantiate_count() const noexcept {
    return impl_->instantiations.load(std::memory_order_relaxed);
}

double GraphExec::last_replay_end() const noexcept {
    return impl_->last_end.load(std::memory_order_relaxed);
}

}  // namespace kl::graph
