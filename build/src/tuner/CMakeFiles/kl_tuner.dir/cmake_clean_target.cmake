file(REMOVE_RECURSE
  "libkl_tuner.a"
)
