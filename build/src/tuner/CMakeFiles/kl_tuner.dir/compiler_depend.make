# Empty compiler generated dependencies file for kl_tuner.
# This may be replaced when dependencies are built.
