
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tuner/bayes.cpp" "src/tuner/CMakeFiles/kl_tuner.dir/bayes.cpp.o" "gcc" "src/tuner/CMakeFiles/kl_tuner.dir/bayes.cpp.o.d"
  "/root/repo/src/tuner/cache.cpp" "src/tuner/CMakeFiles/kl_tuner.dir/cache.cpp.o" "gcc" "src/tuner/CMakeFiles/kl_tuner.dir/cache.cpp.o.d"
  "/root/repo/src/tuner/runner.cpp" "src/tuner/CMakeFiles/kl_tuner.dir/runner.cpp.o" "gcc" "src/tuner/CMakeFiles/kl_tuner.dir/runner.cpp.o.d"
  "/root/repo/src/tuner/session.cpp" "src/tuner/CMakeFiles/kl_tuner.dir/session.cpp.o" "gcc" "src/tuner/CMakeFiles/kl_tuner.dir/session.cpp.o.d"
  "/root/repo/src/tuner/strategy.cpp" "src/tuner/CMakeFiles/kl_tuner.dir/strategy.cpp.o" "gcc" "src/tuner/CMakeFiles/kl_tuner.dir/strategy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/kl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nvrtcsim/CMakeFiles/kl_nvrtcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/cudasim/CMakeFiles/kl_cudasim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/kl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
