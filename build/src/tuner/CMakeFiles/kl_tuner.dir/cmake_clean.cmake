file(REMOVE_RECURSE
  "CMakeFiles/kl_tuner.dir/bayes.cpp.o"
  "CMakeFiles/kl_tuner.dir/bayes.cpp.o.d"
  "CMakeFiles/kl_tuner.dir/cache.cpp.o"
  "CMakeFiles/kl_tuner.dir/cache.cpp.o.d"
  "CMakeFiles/kl_tuner.dir/runner.cpp.o"
  "CMakeFiles/kl_tuner.dir/runner.cpp.o.d"
  "CMakeFiles/kl_tuner.dir/session.cpp.o"
  "CMakeFiles/kl_tuner.dir/session.cpp.o.d"
  "CMakeFiles/kl_tuner.dir/strategy.cpp.o"
  "CMakeFiles/kl_tuner.dir/strategy.cpp.o.d"
  "libkl_tuner.a"
  "libkl_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kl_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
