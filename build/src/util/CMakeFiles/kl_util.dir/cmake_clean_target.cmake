file(REMOVE_RECURSE
  "libkl_util.a"
)
