file(REMOVE_RECURSE
  "CMakeFiles/kl_util.dir/fs.cpp.o"
  "CMakeFiles/kl_util.dir/fs.cpp.o.d"
  "CMakeFiles/kl_util.dir/json.cpp.o"
  "CMakeFiles/kl_util.dir/json.cpp.o.d"
  "CMakeFiles/kl_util.dir/rng.cpp.o"
  "CMakeFiles/kl_util.dir/rng.cpp.o.d"
  "CMakeFiles/kl_util.dir/strings.cpp.o"
  "CMakeFiles/kl_util.dir/strings.cpp.o.d"
  "libkl_util.a"
  "libkl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
