# Empty dependencies file for kl_util.
# This may be replaced when dependencies are built.
