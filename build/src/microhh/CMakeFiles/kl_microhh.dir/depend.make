# Empty dependencies file for kl_microhh.
# This may be replaced when dependencies are built.
