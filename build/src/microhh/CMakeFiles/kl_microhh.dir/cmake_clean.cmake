file(REMOVE_RECURSE
  "CMakeFiles/kl_microhh.dir/definitions.cpp.o"
  "CMakeFiles/kl_microhh.dir/definitions.cpp.o.d"
  "CMakeFiles/kl_microhh.dir/grid.cpp.o"
  "CMakeFiles/kl_microhh.dir/grid.cpp.o.d"
  "CMakeFiles/kl_microhh.dir/kernels.cpp.o"
  "CMakeFiles/kl_microhh.dir/kernels.cpp.o.d"
  "CMakeFiles/kl_microhh.dir/model.cpp.o"
  "CMakeFiles/kl_microhh.dir/model.cpp.o.d"
  "CMakeFiles/kl_microhh.dir/reference.cpp.o"
  "CMakeFiles/kl_microhh.dir/reference.cpp.o.d"
  "CMakeFiles/kl_microhh.dir/tiled_assignment.cpp.o"
  "CMakeFiles/kl_microhh.dir/tiled_assignment.cpp.o.d"
  "libkl_microhh.a"
  "libkl_microhh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kl_microhh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
