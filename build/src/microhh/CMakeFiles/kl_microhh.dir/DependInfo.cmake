
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/microhh/definitions.cpp" "src/microhh/CMakeFiles/kl_microhh.dir/definitions.cpp.o" "gcc" "src/microhh/CMakeFiles/kl_microhh.dir/definitions.cpp.o.d"
  "/root/repo/src/microhh/grid.cpp" "src/microhh/CMakeFiles/kl_microhh.dir/grid.cpp.o" "gcc" "src/microhh/CMakeFiles/kl_microhh.dir/grid.cpp.o.d"
  "/root/repo/src/microhh/kernels.cpp" "src/microhh/CMakeFiles/kl_microhh.dir/kernels.cpp.o" "gcc" "src/microhh/CMakeFiles/kl_microhh.dir/kernels.cpp.o.d"
  "/root/repo/src/microhh/model.cpp" "src/microhh/CMakeFiles/kl_microhh.dir/model.cpp.o" "gcc" "src/microhh/CMakeFiles/kl_microhh.dir/model.cpp.o.d"
  "/root/repo/src/microhh/reference.cpp" "src/microhh/CMakeFiles/kl_microhh.dir/reference.cpp.o" "gcc" "src/microhh/CMakeFiles/kl_microhh.dir/reference.cpp.o.d"
  "/root/repo/src/microhh/tiled_assignment.cpp" "src/microhh/CMakeFiles/kl_microhh.dir/tiled_assignment.cpp.o" "gcc" "src/microhh/CMakeFiles/kl_microhh.dir/tiled_assignment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/kl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nvrtcsim/CMakeFiles/kl_nvrtcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/cudasim/CMakeFiles/kl_cudasim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/kl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
