file(REMOVE_RECURSE
  "libkl_microhh.a"
)
