file(REMOVE_RECURSE
  "CMakeFiles/kl_core.dir/capture.cpp.o"
  "CMakeFiles/kl_core.dir/capture.cpp.o.d"
  "CMakeFiles/kl_core.dir/config.cpp.o"
  "CMakeFiles/kl_core.dir/config.cpp.o.d"
  "CMakeFiles/kl_core.dir/expr.cpp.o"
  "CMakeFiles/kl_core.dir/expr.cpp.o.d"
  "CMakeFiles/kl_core.dir/expr_parser.cpp.o"
  "CMakeFiles/kl_core.dir/expr_parser.cpp.o.d"
  "CMakeFiles/kl_core.dir/kernel_arg.cpp.o"
  "CMakeFiles/kl_core.dir/kernel_arg.cpp.o.d"
  "CMakeFiles/kl_core.dir/kernel_def.cpp.o"
  "CMakeFiles/kl_core.dir/kernel_def.cpp.o.d"
  "CMakeFiles/kl_core.dir/kernel_registry.cpp.o"
  "CMakeFiles/kl_core.dir/kernel_registry.cpp.o.d"
  "CMakeFiles/kl_core.dir/pragma.cpp.o"
  "CMakeFiles/kl_core.dir/pragma.cpp.o.d"
  "CMakeFiles/kl_core.dir/value.cpp.o"
  "CMakeFiles/kl_core.dir/value.cpp.o.d"
  "CMakeFiles/kl_core.dir/wisdom.cpp.o"
  "CMakeFiles/kl_core.dir/wisdom.cpp.o.d"
  "CMakeFiles/kl_core.dir/wisdom_kernel.cpp.o"
  "CMakeFiles/kl_core.dir/wisdom_kernel.cpp.o.d"
  "libkl_core.a"
  "libkl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
