
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/capture.cpp" "src/core/CMakeFiles/kl_core.dir/capture.cpp.o" "gcc" "src/core/CMakeFiles/kl_core.dir/capture.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/kl_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/kl_core.dir/config.cpp.o.d"
  "/root/repo/src/core/expr.cpp" "src/core/CMakeFiles/kl_core.dir/expr.cpp.o" "gcc" "src/core/CMakeFiles/kl_core.dir/expr.cpp.o.d"
  "/root/repo/src/core/expr_parser.cpp" "src/core/CMakeFiles/kl_core.dir/expr_parser.cpp.o" "gcc" "src/core/CMakeFiles/kl_core.dir/expr_parser.cpp.o.d"
  "/root/repo/src/core/kernel_arg.cpp" "src/core/CMakeFiles/kl_core.dir/kernel_arg.cpp.o" "gcc" "src/core/CMakeFiles/kl_core.dir/kernel_arg.cpp.o.d"
  "/root/repo/src/core/kernel_def.cpp" "src/core/CMakeFiles/kl_core.dir/kernel_def.cpp.o" "gcc" "src/core/CMakeFiles/kl_core.dir/kernel_def.cpp.o.d"
  "/root/repo/src/core/kernel_registry.cpp" "src/core/CMakeFiles/kl_core.dir/kernel_registry.cpp.o" "gcc" "src/core/CMakeFiles/kl_core.dir/kernel_registry.cpp.o.d"
  "/root/repo/src/core/pragma.cpp" "src/core/CMakeFiles/kl_core.dir/pragma.cpp.o" "gcc" "src/core/CMakeFiles/kl_core.dir/pragma.cpp.o.d"
  "/root/repo/src/core/value.cpp" "src/core/CMakeFiles/kl_core.dir/value.cpp.o" "gcc" "src/core/CMakeFiles/kl_core.dir/value.cpp.o.d"
  "/root/repo/src/core/wisdom.cpp" "src/core/CMakeFiles/kl_core.dir/wisdom.cpp.o" "gcc" "src/core/CMakeFiles/kl_core.dir/wisdom.cpp.o.d"
  "/root/repo/src/core/wisdom_kernel.cpp" "src/core/CMakeFiles/kl_core.dir/wisdom_kernel.cpp.o" "gcc" "src/core/CMakeFiles/kl_core.dir/wisdom_kernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nvrtcsim/CMakeFiles/kl_nvrtcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/cudasim/CMakeFiles/kl_cudasim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/kl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
