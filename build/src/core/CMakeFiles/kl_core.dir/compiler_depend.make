# Empty compiler generated dependencies file for kl_core.
# This may be replaced when dependencies are built.
