file(REMOVE_RECURSE
  "libkl_core.a"
)
