file(REMOVE_RECURSE
  "libkl_nvrtcsim.a"
)
