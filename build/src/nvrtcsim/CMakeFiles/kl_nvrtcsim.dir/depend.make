# Empty dependencies file for kl_nvrtcsim.
# This may be replaced when dependencies are built.
