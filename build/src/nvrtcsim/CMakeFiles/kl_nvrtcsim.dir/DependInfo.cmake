
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvrtcsim/builtin_kernels.cpp" "src/nvrtcsim/CMakeFiles/kl_nvrtcsim.dir/builtin_kernels.cpp.o" "gcc" "src/nvrtcsim/CMakeFiles/kl_nvrtcsim.dir/builtin_kernels.cpp.o.d"
  "/root/repo/src/nvrtcsim/nvrtc.cpp" "src/nvrtcsim/CMakeFiles/kl_nvrtcsim.dir/nvrtc.cpp.o" "gcc" "src/nvrtcsim/CMakeFiles/kl_nvrtcsim.dir/nvrtc.cpp.o.d"
  "/root/repo/src/nvrtcsim/nvrtc_c_api.cpp" "src/nvrtcsim/CMakeFiles/kl_nvrtcsim.dir/nvrtc_c_api.cpp.o" "gcc" "src/nvrtcsim/CMakeFiles/kl_nvrtcsim.dir/nvrtc_c_api.cpp.o.d"
  "/root/repo/src/nvrtcsim/registry.cpp" "src/nvrtcsim/CMakeFiles/kl_nvrtcsim.dir/registry.cpp.o" "gcc" "src/nvrtcsim/CMakeFiles/kl_nvrtcsim.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cudasim/CMakeFiles/kl_cudasim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/kl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
