file(REMOVE_RECURSE
  "CMakeFiles/kl_nvrtcsim.dir/builtin_kernels.cpp.o"
  "CMakeFiles/kl_nvrtcsim.dir/builtin_kernels.cpp.o.d"
  "CMakeFiles/kl_nvrtcsim.dir/nvrtc.cpp.o"
  "CMakeFiles/kl_nvrtcsim.dir/nvrtc.cpp.o.d"
  "CMakeFiles/kl_nvrtcsim.dir/nvrtc_c_api.cpp.o"
  "CMakeFiles/kl_nvrtcsim.dir/nvrtc_c_api.cpp.o.d"
  "CMakeFiles/kl_nvrtcsim.dir/registry.cpp.o"
  "CMakeFiles/kl_nvrtcsim.dir/registry.cpp.o.d"
  "libkl_nvrtcsim.a"
  "libkl_nvrtcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kl_nvrtcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
