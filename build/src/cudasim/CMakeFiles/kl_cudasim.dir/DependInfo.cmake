
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cudasim/context.cpp" "src/cudasim/CMakeFiles/kl_cudasim.dir/context.cpp.o" "gcc" "src/cudasim/CMakeFiles/kl_cudasim.dir/context.cpp.o.d"
  "/root/repo/src/cudasim/device_props.cpp" "src/cudasim/CMakeFiles/kl_cudasim.dir/device_props.cpp.o" "gcc" "src/cudasim/CMakeFiles/kl_cudasim.dir/device_props.cpp.o.d"
  "/root/repo/src/cudasim/driver.cpp" "src/cudasim/CMakeFiles/kl_cudasim.dir/driver.cpp.o" "gcc" "src/cudasim/CMakeFiles/kl_cudasim.dir/driver.cpp.o.d"
  "/root/repo/src/cudasim/kernel_image.cpp" "src/cudasim/CMakeFiles/kl_cudasim.dir/kernel_image.cpp.o" "gcc" "src/cudasim/CMakeFiles/kl_cudasim.dir/kernel_image.cpp.o.d"
  "/root/repo/src/cudasim/memory.cpp" "src/cudasim/CMakeFiles/kl_cudasim.dir/memory.cpp.o" "gcc" "src/cudasim/CMakeFiles/kl_cudasim.dir/memory.cpp.o.d"
  "/root/repo/src/cudasim/module.cpp" "src/cudasim/CMakeFiles/kl_cudasim.dir/module.cpp.o" "gcc" "src/cudasim/CMakeFiles/kl_cudasim.dir/module.cpp.o.d"
  "/root/repo/src/cudasim/perf_model.cpp" "src/cudasim/CMakeFiles/kl_cudasim.dir/perf_model.cpp.o" "gcc" "src/cudasim/CMakeFiles/kl_cudasim.dir/perf_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/kl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
