# Empty compiler generated dependencies file for kl_cudasim.
# This may be replaced when dependencies are built.
