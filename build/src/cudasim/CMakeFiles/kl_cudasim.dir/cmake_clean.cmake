file(REMOVE_RECURSE
  "CMakeFiles/kl_cudasim.dir/context.cpp.o"
  "CMakeFiles/kl_cudasim.dir/context.cpp.o.d"
  "CMakeFiles/kl_cudasim.dir/device_props.cpp.o"
  "CMakeFiles/kl_cudasim.dir/device_props.cpp.o.d"
  "CMakeFiles/kl_cudasim.dir/driver.cpp.o"
  "CMakeFiles/kl_cudasim.dir/driver.cpp.o.d"
  "CMakeFiles/kl_cudasim.dir/kernel_image.cpp.o"
  "CMakeFiles/kl_cudasim.dir/kernel_image.cpp.o.d"
  "CMakeFiles/kl_cudasim.dir/memory.cpp.o"
  "CMakeFiles/kl_cudasim.dir/memory.cpp.o.d"
  "CMakeFiles/kl_cudasim.dir/module.cpp.o"
  "CMakeFiles/kl_cudasim.dir/module.cpp.o.d"
  "CMakeFiles/kl_cudasim.dir/perf_model.cpp.o"
  "CMakeFiles/kl_cudasim.dir/perf_model.cpp.o.d"
  "libkl_cudasim.a"
  "libkl_cudasim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kl_cudasim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
