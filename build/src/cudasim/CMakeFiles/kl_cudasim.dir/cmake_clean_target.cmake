file(REMOVE_RECURSE
  "libkl_cudasim.a"
)
