file(REMOVE_RECURSE
  "CMakeFiles/bench_model_explain.dir/bench_model_explain.cpp.o"
  "CMakeFiles/bench_model_explain.dir/bench_model_explain.cpp.o.d"
  "bench_model_explain"
  "bench_model_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
