file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_gpus.dir/bench_table1_gpus.cpp.o"
  "CMakeFiles/bench_table1_gpus.dir/bench_table1_gpus.cpp.o.d"
  "bench_table1_gpus"
  "bench_table1_gpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_gpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
