# Empty dependencies file for bench_fig4_portability.
# This may be replaced when dependencies are built.
