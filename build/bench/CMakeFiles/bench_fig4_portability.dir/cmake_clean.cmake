file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_portability.dir/bench_fig4_portability.cpp.o"
  "CMakeFiles/bench_fig4_portability.dir/bench_fig4_portability.cpp.o.d"
  "bench_fig4_portability"
  "bench_fig4_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
