file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_capture.dir/bench_table3_capture.cpp.o"
  "CMakeFiles/bench_table3_capture.dir/bench_table3_capture.cpp.o.d"
  "bench_table3_capture"
  "bench_table3_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
