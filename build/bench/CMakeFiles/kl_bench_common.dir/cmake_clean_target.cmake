file(REMOVE_RECURSE
  "../lib/libkl_bench_common.a"
)
