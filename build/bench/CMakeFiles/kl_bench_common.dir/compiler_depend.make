# Empty compiler generated dependencies file for kl_bench_common.
# This may be replaced when dependencies are built.
