file(REMOVE_RECURSE
  "../lib/libkl_bench_common.a"
  "../lib/libkl_bench_common.pdb"
  "CMakeFiles/kl_bench_common.dir/common.cpp.o"
  "CMakeFiles/kl_bench_common.dir/common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kl_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
