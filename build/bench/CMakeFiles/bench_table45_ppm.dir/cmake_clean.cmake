file(REMOVE_RECURSE
  "CMakeFiles/bench_table45_ppm.dir/bench_table45_ppm.cpp.o"
  "CMakeFiles/bench_table45_ppm.dir/bench_table45_ppm.cpp.o.d"
  "bench_table45_ppm"
  "bench_table45_ppm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table45_ppm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
