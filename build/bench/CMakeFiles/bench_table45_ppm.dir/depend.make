# Empty dependencies file for bench_table45_ppm.
# This may be replaced when dependencies are built.
