# Empty dependencies file for bench_fig3_sessions.
# This may be replaced when dependencies are built.
