file(REMOVE_RECURSE
  "CMakeFiles/microhh_simulation.dir/microhh_simulation.cpp.o"
  "CMakeFiles/microhh_simulation.dir/microhh_simulation.cpp.o.d"
  "microhh_simulation"
  "microhh_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microhh_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
