# Empty compiler generated dependencies file for microhh_simulation.
# This may be replaced when dependencies are built.
