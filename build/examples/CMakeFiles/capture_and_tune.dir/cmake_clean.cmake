file(REMOVE_RECURSE
  "CMakeFiles/capture_and_tune.dir/capture_and_tune.cpp.o"
  "CMakeFiles/capture_and_tune.dir/capture_and_tune.cpp.o.d"
  "capture_and_tune"
  "capture_and_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capture_and_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
