# Empty dependencies file for capture_and_tune.
# This may be replaced when dependencies are built.
