# Empty compiler generated dependencies file for annotated_kernel.
# This may be replaced when dependencies are built.
