file(REMOVE_RECURSE
  "CMakeFiles/annotated_kernel.dir/annotated_kernel.cpp.o"
  "CMakeFiles/annotated_kernel.dir/annotated_kernel.cpp.o.d"
  "annotated_kernel"
  "annotated_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotated_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
