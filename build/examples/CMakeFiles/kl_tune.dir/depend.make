# Empty dependencies file for kl_tune.
# This may be replaced when dependencies are built.
