file(REMOVE_RECURSE
  "CMakeFiles/kl_tune.dir/kl_tune.cpp.o"
  "CMakeFiles/kl_tune.dir/kl_tune.cpp.o.d"
  "kl_tune"
  "kl_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kl_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
