# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_value_expr[1]_include.cmake")
include("/root/repo/build/tests/test_config[1]_include.cmake")
include("/root/repo/build/tests/test_expr_parser[1]_include.cmake")
include("/root/repo/build/tests/test_cudasim[1]_include.cmake")
include("/root/repo/build/tests/test_perf_model[1]_include.cmake")
include("/root/repo/build/tests/test_driver[1]_include.cmake")
include("/root/repo/build/tests/test_nvrtc_c_api[1]_include.cmake")
include("/root/repo/build/tests/test_nvrtc[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_def[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_arg[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_registry[1]_include.cmake")
include("/root/repo/build/tests/test_wisdom[1]_include.cmake")
include("/root/repo/build/tests/test_capture[1]_include.cmake")
include("/root/repo/build/tests/test_wisdom_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_tuner[1]_include.cmake")
include("/root/repo/build/tests/test_bayes[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_microhh[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_paper_shapes[1]_include.cmake")
include("/root/repo/build/tests/test_error_paths[1]_include.cmake")
