file(REMOVE_RECURSE
  "CMakeFiles/test_cudasim.dir/test_cudasim.cpp.o"
  "CMakeFiles/test_cudasim.dir/test_cudasim.cpp.o.d"
  "test_cudasim"
  "test_cudasim.pdb"
  "test_cudasim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cudasim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
