# Empty compiler generated dependencies file for test_cudasim.
# This may be replaced when dependencies are built.
