file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_arg.dir/test_kernel_arg.cpp.o"
  "CMakeFiles/test_kernel_arg.dir/test_kernel_arg.cpp.o.d"
  "test_kernel_arg"
  "test_kernel_arg.pdb"
  "test_kernel_arg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_arg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
