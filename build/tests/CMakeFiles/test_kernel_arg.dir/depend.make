# Empty dependencies file for test_kernel_arg.
# This may be replaced when dependencies are built.
