# Empty dependencies file for test_kernel_def.
# This may be replaced when dependencies are built.
