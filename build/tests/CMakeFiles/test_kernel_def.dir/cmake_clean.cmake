file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_def.dir/test_kernel_def.cpp.o"
  "CMakeFiles/test_kernel_def.dir/test_kernel_def.cpp.o.d"
  "test_kernel_def"
  "test_kernel_def.pdb"
  "test_kernel_def[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_def.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
