# Empty compiler generated dependencies file for test_wisdom_kernel.
# This may be replaced when dependencies are built.
