file(REMOVE_RECURSE
  "CMakeFiles/test_wisdom_kernel.dir/test_wisdom_kernel.cpp.o"
  "CMakeFiles/test_wisdom_kernel.dir/test_wisdom_kernel.cpp.o.d"
  "test_wisdom_kernel"
  "test_wisdom_kernel.pdb"
  "test_wisdom_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wisdom_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
