# Empty dependencies file for test_value_expr.
# This may be replaced when dependencies are built.
