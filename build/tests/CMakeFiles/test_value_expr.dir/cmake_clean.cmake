file(REMOVE_RECURSE
  "CMakeFiles/test_value_expr.dir/test_value_expr.cpp.o"
  "CMakeFiles/test_value_expr.dir/test_value_expr.cpp.o.d"
  "test_value_expr"
  "test_value_expr.pdb"
  "test_value_expr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_value_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
