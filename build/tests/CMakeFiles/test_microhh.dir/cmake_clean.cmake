file(REMOVE_RECURSE
  "CMakeFiles/test_microhh.dir/test_microhh.cpp.o"
  "CMakeFiles/test_microhh.dir/test_microhh.cpp.o.d"
  "test_microhh"
  "test_microhh.pdb"
  "test_microhh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_microhh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
