# Empty dependencies file for test_microhh.
# This may be replaced when dependencies are built.
