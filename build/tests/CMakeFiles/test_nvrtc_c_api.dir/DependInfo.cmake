
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_nvrtc_c_api.cpp" "tests/CMakeFiles/test_nvrtc_c_api.dir/test_nvrtc_c_api.cpp.o" "gcc" "tests/CMakeFiles/test_nvrtc_c_api.dir/test_nvrtc_c_api.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/microhh/CMakeFiles/kl_microhh.dir/DependInfo.cmake"
  "/root/repo/build/src/tuner/CMakeFiles/kl_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/kl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nvrtcsim/CMakeFiles/kl_nvrtcsim.dir/DependInfo.cmake"
  "/root/repo/build/src/cudasim/CMakeFiles/kl_cudasim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/kl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
