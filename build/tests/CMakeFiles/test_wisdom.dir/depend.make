# Empty dependencies file for test_wisdom.
# This may be replaced when dependencies are built.
