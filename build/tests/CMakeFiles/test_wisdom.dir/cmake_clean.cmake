file(REMOVE_RECURSE
  "CMakeFiles/test_wisdom.dir/test_wisdom.cpp.o"
  "CMakeFiles/test_wisdom.dir/test_wisdom.cpp.o.d"
  "test_wisdom"
  "test_wisdom.pdb"
  "test_wisdom[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wisdom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
