# Empty compiler generated dependencies file for test_nvrtc.
# This may be replaced when dependencies are built.
