file(REMOVE_RECURSE
  "CMakeFiles/test_nvrtc.dir/test_nvrtc.cpp.o"
  "CMakeFiles/test_nvrtc.dir/test_nvrtc.cpp.o.d"
  "test_nvrtc"
  "test_nvrtc.pdb"
  "test_nvrtc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvrtc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
