file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_registry.dir/test_kernel_registry.cpp.o"
  "CMakeFiles/test_kernel_registry.dir/test_kernel_registry.cpp.o.d"
  "test_kernel_registry"
  "test_kernel_registry.pdb"
  "test_kernel_registry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
