// A miniature MicroHH run (the paper's §5.1 application): a turbulent
// velocity field on a 3D grid advanced by explicit Euler steps whose
// tendencies come from the two tunable GPU kernels, launched through
// Kernel Launcher. Demonstrates that one application binary transparently
// reuses compiled kernel instances across time steps and recompiles when
// the problem size changes mid-run.
//
// Usage: microhh_simulation [grid=48] [steps=5]

#include <cstdio>
#include <cstdlib>

#include "cudasim/context.hpp"
#include "microhh/model.hpp"
#include "util/fs.hpp"

using namespace kl;

int main(int argc, char** argv) {
    const int grid_size = argc > 1 ? std::atoi(argv[1]) : 48;
    const int steps = argc > 2 ? std::atoi(argv[2]) : 5;

    auto context = sim::Context::create("NVIDIA RTX A4000");

    microhh::Model<float>::Options options;
    options.viscosity = 5e-3;
    options.wisdom.wisdom_dir(make_temp_dir("kl-microhh"));

    microhh::Grid grid(grid_size, grid_size, grid_size);
    std::printf("MicroHH mini-model: %s grid, %d steps, float, on %s\n\n",
                grid.to_string().c_str(), steps, context->device().name.c_str());

    microhh::Model<float> model(grid, *context, options);
    const float dt = 1e-4f;
    for (int step = 0; step < steps; step++) {
        model.step(dt);
        std::printf(
            "step %2d: |du/dt| = %.5f   advec %s, diff %s\n", step + 1,
            model.last_tendency_norm(),
            model.advec_kernel().last_launch_was_cold() ? "compiled" : "cached",
            model.diff_kernel().last_launch_was_cold() ? "compiled" : "cached");
    }

    std::printf("\nsimulated device time: %.3f ms across %llu kernel launches\n",
                context->clock().now() * 1e3,
                static_cast<unsigned long long>(context->launch_count()));

    // A second model at a different resolution: Kernel Launcher compiles a
    // fresh instance per problem size within the same process.
    microhh::Grid grid2(grid_size / 2, grid_size / 2, grid_size);
    microhh::Model<float> refined(grid2, *context, options);
    refined.step(dt);
    std::printf("resized run %s: advec instance %s\n", grid2.to_string().c_str(),
                refined.advec_kernel().last_launch_was_cold() ? "compiled" : "cached");
    std::printf("microhh_simulation OK\n");
    return 0;
}
