// Annotated-kernel workflow: the tuning specification lives inside the
// kernel source as `#pragma kernel_launcher` lines, so host code shrinks
// to "load, launch". Compare with quickstart.cpp, where the same
// specification is built with the C++ KernelBuilder API.
//
// Usage: annotated_kernel

#include <cstdio>
#include <vector>

#include "core/device_buffer.hpp"
#include "core/pragma.hpp"
#include "core/wisdom_kernel.hpp"
#include "cudasim/context.hpp"
#include "util/fs.hpp"

namespace klc = kl::core;

namespace {

// In a real tree this would be saxpy.cu on disk; the annotations and the
// kernel live together either way.
const char* kAnnotatedSaxpy = R"cuda(
#pragma kernel_launcher tune BLOCK_SIZE(64, 128, 256, 512) default(256)
#pragma kernel_launcher problem_size(arg3)
#pragma kernel_launcher block_size(BLOCK_SIZE)
#pragma kernel_launcher output(0)
#pragma kernel_launcher tuning_key(saxpy_annotated)
__global__ void saxpy(float *y, const float *x, float a, int n) {
    int i = blockIdx.x * BLOCK_SIZE + threadIdx.x;
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}
)cuda";

}  // namespace

int main() {
    auto context = kl::sim::Context::create("NVIDIA RTX A4000");

    // One call replaces the whole KernelBuilder block.
    klc::KernelBuilder builder = klc::builder_from_annotated_source(
        "saxpy", klc::KernelSource::inline_source("saxpy.cu", kAnnotatedSaxpy));
    std::printf("parsed annotations: %zu tunables, space of %llu configurations\n",
                builder.space().params().size(),
                static_cast<unsigned long long>(builder.space().cardinality()));

    klc::WisdomKernel kernel(
        builder, klc::WisdomSettings().wisdom_dir(kl::make_temp_dir("kl-annotated")));

    const int n = 100000;
    std::vector<float> hy(n, 1.0f), hx(n, 2.0f);
    klc::DeviceArray<float> y(hy), x(hx);
    kernel.launch(y, x, 3.0f, n);

    std::vector<float> out = y.copy_to_host();
    for (int i = 0; i < n; i += 9973) {
        if (out[i] != 7.0f) {
            std::printf("FAILED at %d: %f\n", i, out[i]);
            return 1;
        }
    }
    std::printf("saxpy verified (y = 3*x + y = 7.0), block size %u selected by '%s'\n",
                context->last_launch().block.x,
                klc::wisdom_match_name(kernel.last_match()));
    std::printf("annotated_kernel OK\n");
    return 0;
}
