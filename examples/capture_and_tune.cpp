// The paper's full workflow (Figure 1) in one program:
//
//   1. run the application with KERNEL_LAUNCHER_CAPTURE set, so the
//      kernels' launches are exported to capture files;
//   2. replay the captures through the auto-tuner (the stand-in for the
//      paper's Kernel-Tuner-based command-line script), producing wisdom;
//   3. rerun the application: Kernel Launcher now selects the tuned
//      configurations at runtime.
//
// Usage: capture_and_tune [grid=32] [evals=150]

#include <cstdio>
#include <cstdlib>

#include "cudasim/context.hpp"
#include "microhh/model.hpp"
#include "tuner/session.hpp"
#include "util/fs.hpp"
#include "util/strings.hpp"

using namespace kl;

int main(int argc, char** argv) {
    const int grid_size = argc > 1 ? std::atoi(argv[1]) : 32;
    const int evals = argc > 2 ? std::atoi(argv[2]) : 150;

    const std::string workdir = make_temp_dir("kl-capture-tune");
    std::printf("working directory: %s\n\n", workdir.c_str());

    microhh::Grid grid(grid_size, grid_size, grid_size);

    // ---- 1. capture -------------------------------------------------------
    std::printf("[1/3] running the application with capture enabled\n");
    {
        auto context = sim::Context::create("NVIDIA RTX A4000");
        microhh::Model<float>::Options options;
        options.wisdom.wisdom_dir(workdir).capture_dir(workdir)
            .capture_pattern("advec_*")
            .capture_pattern("diff_*");
        microhh::Model<float> model(grid, *context, options);
        model.step(1e-4f);
    }
    std::vector<std::string> captures = core::list_captures(workdir);
    for (const std::string& path : captures) {
        std::printf("  captured: %s (%s)\n", path_filename(path).c_str(),
                    format_bytes(file_size(path)).c_str());
    }

    // ---- 2. tune ----------------------------------------------------------
    std::printf("\n[2/3] tuning the captured kernels (bayes, %d evaluations each)\n",
                evals);
    {
        auto context =
            sim::Context::create("NVIDIA RTX A4000", sim::ExecutionMode::Functional);
        for (const std::string& path : captures) {
            core::CapturedLaunch capture = core::read_capture(path);
            tuner::SessionOptions options;
            options.max_evals = static_cast<uint64_t>(evals);
            tuner::CaptureReplayRunner::Options runner_options;
            runner_options.validate = true;  // compare outputs vs reference
            tuner::TuningResult result = tuner::tune_capture_to_wisdom(
                capture, *context, "bayes", workdir, options, runner_options);
            std::printf(
                "  %-16s best %.4f ms after %llu evals (%llu invalid) -> %s\n",
                capture.def.key().c_str(), result.best_seconds * 1e3,
                static_cast<unsigned long long>(result.evaluations),
                static_cast<unsigned long long>(result.invalid_evaluations),
                path_filename(workdir + "/" + capture.def.key() + ".wisdom.json").c_str());
        }
    }

    // ---- 3. rerun with wisdom ---------------------------------------------
    std::printf("\n[3/3] rerunning the application with wisdom available\n");
    {
        auto context = sim::Context::create("NVIDIA RTX A4000");
        microhh::Model<float>::Options options;
        options.wisdom.wisdom_dir(workdir);
        microhh::Model<float> model(grid, *context, options);
        model.step(1e-4f);
        std::printf("  advec_u selection: %s\n",
                    core::wisdom_match_name(model.advec_kernel().last_match()));
        std::printf("  diff_uvw selection: %s\n",
                    core::wisdom_match_name(model.diff_kernel().last_match()));
    }

    std::printf("\ncapture_and_tune OK\n");
    return 0;
}
