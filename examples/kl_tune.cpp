// kl_tune — command-line tuner for kernel captures, the stand-in for the
// Kernel-Tuner-based script the paper describes in §4.3. Reads a capture
// produced by KERNEL_LAUNCHER_CAPTURE, explores its configuration space on
// the requested simulated device, and appends the best configuration to
// the kernel's wisdom file.
//
// Usage:
//   kl_tune <capture.json> [options]
//     --device <name>      simulated GPU (default: capture's device)
//     --strategy <name>    exhaustive|random|anneal|genetic|bayes (default bayes)
//     --minutes <m>        simulated tuning budget (default 15, as the paper)
//     --evals <n>          evaluation cap (default unlimited)
//     --wisdom <dir>       wisdom output directory (default: capture's dir)
//     --cache <file>       persistent tuning cache (resume interrupted runs)
//     --validate           functionally validate outputs per configuration
//     --list-devices       print the simulated device registry and exit

#include <cstdio>
#include <cstring>
#include <string>

#include "cudasim/context.hpp"
#include "microhh/kernels.hpp"
#include "tuner/cache.hpp"
#include "tuner/session.hpp"
#include "util/errors.hpp"

using namespace kl;

namespace {

int usage() {
    std::fprintf(
        stderr,
        "usage: kl_tune <capture.json> [--device NAME] [--strategy S] [--minutes M]\n"
        "               [--evals N] [--wisdom DIR] [--validate] [--list-devices]\n");
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    std::string capture_path, device, strategy = "bayes", wisdom_dir, cache_path;
    double minutes = 15;
    uint64_t evals = UINT64_MAX;
    bool validate = false;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "option %s expects a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--list-devices") {
            for (const sim::DeviceProperties& p : sim::DeviceRegistry::global().all()) {
                std::printf("%s (%s, cc %s)\n", p.name.c_str(), p.architecture.c_str(),
                            p.compute_capability().c_str());
            }
            return 0;
        } else if (arg == "--device") {
            device = next();
        } else if (arg == "--strategy") {
            strategy = next();
        } else if (arg == "--minutes") {
            minutes = std::atof(next());
        } else if (arg == "--evals") {
            evals = static_cast<uint64_t>(std::atoll(next()));
        } else if (arg == "--wisdom") {
            wisdom_dir = next();
        } else if (arg == "--cache") {
            cache_path = next();
        } else if (arg == "--validate") {
            validate = true;
        } else if (arg.rfind("--", 0) == 0) {
            return usage();
        } else if (capture_path.empty()) {
            capture_path = arg;
        } else {
            return usage();
        }
    }
    if (capture_path.empty()) {
        return usage();
    }

    try {
        microhh::register_microhh_kernels();
        core::CapturedLaunch capture = core::read_capture(capture_path, validate);
        if (device.empty()) {
            device = capture.device_name;
        }
        if (wisdom_dir.empty()) {
            size_t slash = capture_path.find_last_of('/');
            wisdom_dir = slash == std::string::npos ? "." : capture_path.substr(0, slash);
        }

        std::printf("kernel     : %s (%s)\n", capture.def.key().c_str(),
                    capture.problem_size.to_string().c_str());
        std::printf("device     : %s\n", device.c_str());
        std::printf("strategy   : %s, budget %.1f min%s\n", strategy.c_str(), minutes,
                    validate ? ", with output validation" : "");
        std::printf("space      : %llu configurations\n",
                    static_cast<unsigned long long>(capture.def.space.cardinality()));

        auto context = sim::Context::create(
            device,
            validate ? sim::ExecutionMode::Functional : sim::ExecutionMode::TimingOnly);

        tuner::SessionOptions options;
        options.max_seconds = minutes * 60;
        options.max_evals = evals;
        options.per_eval_overhead_seconds = 0.8;
        tuner::CaptureReplayRunner::Options runner_options;
        runner_options.validate = validate;

        tuner::TuningResult result;
        if (cache_path.empty()) {
            result = tuner::tune_capture_to_wisdom(
                capture, *context, strategy, wisdom_dir, options, runner_options);
        } else {
            // Cached tuning: resumable across interrupted invocations.
            tuner::TuningCache cache(
                cache_path, capture.def.key(), device, capture.problem_size);
            tuner::CaptureReplayRunner raw(capture, *context, runner_options);
            tuner::CachingRunner runner(raw, cache);
            tuner::TuningSession session(
                runner, capture.def.space, tuner::make_strategy(strategy), options);
            result = session.run();
            std::printf("cache      : %llu hits, %llu fresh evaluations (%s)\n",
                        static_cast<unsigned long long>(runner.hits()),
                        static_cast<unsigned long long>(runner.misses()),
                        cache_path.c_str());
            if (result.success) {
                core::WisdomRecord record;
                record.problem_size = capture.problem_size;
                record.device_name = context->device().name;
                record.device_architecture = context->device().architecture;
                record.config = result.best_config;
                record.time_seconds = result.best_seconds;
                record.provenance = core::make_provenance(strategy);
                const std::string path =
                    wisdom_dir + "/" + capture.def.key() + ".wisdom.json";
                core::WisdomFile wisdom = core::WisdomFile::load(path, capture.def.key());
                wisdom.add(record);
                wisdom.save(path);
            }
        }

        if (!result.success) {
            std::fprintf(stderr, "tuning failed: no valid configuration found\n");
            return 1;
        }
        std::printf(
            "\nbest       : %.4f ms after %llu evaluations (%llu invalid, %.1f simulated min)\n",
            result.best_seconds * 1e3,
            static_cast<unsigned long long>(result.evaluations),
            static_cast<unsigned long long>(result.invalid_evaluations),
            result.wall_seconds / 60);
        std::printf("config     : %s\n", result.best_config.to_string().c_str());
        std::printf("wisdom     : %s/%s.wisdom.json\n", wisdom_dir.c_str(),
                    capture.def.key().c_str());
        return 0;
    } catch (const Error& e) {
        std::fprintf(stderr, "kl_tune: %s\n", e.what());
        return 1;
    }
}
