// Quickstart: the paper's Listing 3 end-to-end. Defines a tunable
// vector_add kernel, launches it through a WisdomKernel (default
// configuration, since nothing is tuned yet), verifies the result, then
// tunes the kernel and launches again with the selected configuration.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "core/kernel_launcher.hpp"
#include "cudasim/context.hpp"
#include "nvrtcsim/registry.hpp"
#include "tuner/session.hpp"
#include "util/fs.hpp"

namespace klc = ::kl::core;
using ::kl::sim::Context;

int main() {
    // A simulated A100 stands in for the GPU; kernels execute functionally
    // on the host and timings come from the device model.
    auto context = Context::create("NVIDIA A100-PCIE-40GB");

    // --- Listing 3: the kernel definition -------------------------------
    auto builder = klc::KernelBuilder(
        "vector_add",
        klc::KernelSource::inline_source(
            "vector_add.cu", ::kl::rtc::builtin_kernel_source("vector_add")));
    auto block_size = builder.tune("block_size", {32, 64, 128, 256, 1024});
    builder.problem_size(klc::arg3)
        .template_args(block_size)
        .block_size(block_size);

    // from_env() honors the KERNEL_LAUNCHER_* variables (compile cache,
    // lint mode, ...), so e.g. KERNEL_LAUNCHER_CACHE=readwrite populates a
    // persistent cache directory that kl-cache can inspect.
    const std::string wisdom_dir = ::kl::make_temp_dir("kl-quickstart");
    auto kernel =
        klc::WisdomKernel(builder, klc::WisdomSettings::from_env().wisdom_dir(wisdom_dir));

    // --- data ------------------------------------------------------------
    const int n = 10'000'000;
    std::vector<float> host_a(n), host_b(n);
    for (int i = 0; i < n; i++) {
        host_a[i] = 0.5f * i;
        host_b[i] = 1.0f * i;
    }
    klc::DeviceArray<float> c(n), a(host_a), b(host_b);

    // --- first launch: default configuration ----------------------------
    kernel.launch(c, a, b, n);
    context->synchronize();
    std::printf("first launch : cold=%d, compile %.0f ms, kernel config selected by '%s'\n",
                kernel.last_launch_was_cold(),
                kernel.last_cold_overhead().compile_seconds * 1e3,
                klc::wisdom_match_name(kernel.last_match()));

    std::vector<float> result = c.copy_to_host();
    for (int i = 0; i < n; i += 1'000'003) {
        if (result[i] != host_a[i] + host_b[i]) {
            std::printf("FAILED: c[%d] = %f\n", i, result[i]);
            return 1;
        }
    }
    std::printf("result verified: c[i] == a[i] + b[i]\n");

    // --- tune it ----------------------------------------------------------
    // Capture the launch in memory and replay it through the tuner.
    klc::CapturedLaunch capture;
    capture.def = builder.build();
    capture.problem_size = klc::ProblemSize(n);
    capture.device_name = context->device().name;
    capture.device_architecture = context->device().architecture;
    {
        klc::CapturedArg out;
        out.is_buffer = true;
        out.is_output = true;
        out.type = klc::ScalarType::F32;
        out.count = n;
        capture.args.push_back(out);
        klc::CapturedArg in = out;
        in.is_output = false;
        capture.args.push_back(in);
        capture.args.push_back(in);
        klc::CapturedArg scalar;
        scalar.is_buffer = false;
        scalar.type = klc::ScalarType::I32;
        scalar.scalar_value = klc::Value(n);
        capture.args.push_back(scalar);
    }

    ::kl::tuner::SessionOptions options;
    options.max_evals = 16;  // the space only has 5 configurations
    ::kl::tuner::TuningResult tuned = ::kl::tuner::tune_capture_to_wisdom(
        capture, *context, "exhaustive", wisdom_dir, options);
    std::printf("tuned: best config {%s} at %.4f ms after %llu evaluations\n",
                tuned.best_config.to_string().c_str(), tuned.best_seconds * 1e3,
                static_cast<unsigned long long>(tuned.evaluations));

    // --- relaunch: the wisdom file now selects the tuned configuration ----
    kernel.clear_cache();
    kernel.launch(c, a, b, n);
    std::printf("relaunch     : selection match = '%s' (expected 'exact')\n",
                klc::wisdom_match_name(kernel.last_match()));
    std::printf("quickstart OK\n");
    return 0;
}
