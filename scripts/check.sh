#!/usr/bin/env bash
# Full verification matrix: build and run the whole ctest suite three
# ways — the default build, a ThreadSanitizer build (-DKL_SANITIZE=thread)
# and an AddressSanitizer+UBSan build (-DKL_SANITIZE=address) — plus a
# lint-graphs stage that runs `kl-lint --graph --strict` over the
# checked-in fixture DAGs (the dependency-complete one must pass, the
# seeded-hazard one must fail with KL006), a mem-stress stage that
# reruns the randomized allocator suite (docs/MEMORY.md) at 10x its
# default seed counts via KERNEL_LAUNCHER_MEM_STRESS_SEEDS, and a
# distributed stage that boots kl-wisdomd on an ephemeral port and proves
# a fresh process warms its compile cache over the network with zero
# NVRTC compiles (docs/DISTRIBUTED.md).
#
# Usage:  scripts/check.sh [default|thread|address|lint-graphs|mem-stress|distributed]...
#         (no arguments runs all of them)
#
# Each variant configures into its own build directory (build-check-NAME)
# so the matrix never disturbs an existing build/ tree. Exits non-zero on
# the first failing variant.
set -u

repo=$(cd "$(dirname "$0")/.." && pwd)
jobs=${JOBS:-$(getconf _NPROCESSORS_ONLN 2> /dev/null || nproc 2> /dev/null || echo 4)}

variants=("$@")
if [ ${#variants[@]} -eq 0 ]; then
    variants=(default thread address lint-graphs mem-stress distributed)
fi

# Static data-flow analysis over the fixture DAGs: one graph is
# dependency-complete and must come back clean even under --strict; the
# other has a seeded missing edge and must fail with KL006.
run_lint_graphs() {
    local dir="$repo/build-check-lint-graphs"
    local fixtures="$repo/tests/cli/fixtures"

    echo "=== [lint-graphs] build kl-lint ==="
    cmake -B "$dir" -S "$repo" || return 1
    cmake --build "$dir" -j "$jobs" --target kl-lint || return 1

    echo "=== [lint-graphs] clean DAG (must pass --strict) ==="
    "$dir/tools/kl-lint" --graph --strict "$fixtures/graph_clean.json" || {
        echo "check.sh: clean fixture DAG unexpectedly failed lint" >&2
        return 1
    }

    echo "=== [lint-graphs] seeded-hazard DAG (must fail) ==="
    if "$dir/tools/kl-lint" --graph --strict "$fixtures/graph_hazard.json"; then
        echo "check.sh: seeded-hazard fixture DAG unexpectedly passed lint" >&2
        return 1
    fi
    echo "check.sh: lint-graphs stage passed"
}

# The randomized allocator stress suite at 10x its default seed counts:
# 1000+ schedules through the stream-ordered pool, each cross-checked
# against the AllocOracle reference model and differentially against the
# sync engine (docs/MEMORY.md).
run_mem_stress() {
    local dir="$repo/build-check-mem-stress"

    echo "=== [mem-stress] build test_async_memory ==="
    cmake -B "$dir" -S "$repo" || return 1
    cmake --build "$dir" -j "$jobs" --target test_async_memory || return 1

    echo "=== [mem-stress] 10x seeds ==="
    KERNEL_LAUNCHER_MEM_STRESS_SEEDS=10 "$dir/tests/test_async_memory" || {
        echo "check.sh: randomized allocator stress suite failed at 10x seeds" >&2
        return 1
    }
    echo "check.sh: mem-stress stage passed"
}

# Multi-process warm-up smoke over a real TCP daemon: kl-wisdomd on an
# ephemeral port, one process tunes and publishes, a second (fresh wisdom
# dir, fresh cache dir) must first-launch with zero NVRTC compiles. The
# same flow the cli_kl_wisdomd ctest runs, but from the operator's
# perspective: the shipped binaries and env vars only.
run_distributed() {
    local dir="$repo/build-check-distributed"
    local tmp
    tmp=$(mktemp -d) || return 1
    local daemon_pid=""

    echo "=== [distributed] build kl-wisdomd, kl-cache, quickstart ==="
    cmake -B "$dir" -S "$repo" || return 1
    cmake --build "$dir" -j "$jobs" --target kl-wisdomd kl-cache quickstart || return 1

    cleanup_distributed() {
        if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2> /dev/null; then
            kill -TERM "$daemon_pid" 2> /dev/null
            wait "$daemon_pid" 2> /dev/null
        fi
        rm -rf "$tmp"
    }

    echo "=== [distributed] start kl-wisdomd on an ephemeral port ==="
    "$dir/tools/kl-wisdomd" --port-file "$tmp/port" --dir "$tmp/artifacts" \
        > "$tmp/daemon.out" 2> "$tmp/daemon.err" &
    daemon_pid=$!
    for _ in $(seq 50); do
        [ -s "$tmp/port" ] && break
        sleep 0.1
    done
    if [ ! -s "$tmp/port" ]; then
        echo "check.sh: kl-wisdomd never wrote its port file" >&2
        cleanup_distributed
        return 1
    fi
    local server
    server="127.0.0.1:$(cat "$tmp/port")"

    echo "=== [distributed] node 1: tune + compile + publish ==="
    KERNEL_LAUNCHER_WISDOM_SERVER="$server" \
        KERNEL_LAUNCHER_CACHE=readwrite KERNEL_LAUNCHER_CACHE_DIR="$tmp/cache1" \
        "$dir/examples/quickstart" > "$tmp/node1.out" || {
        echo "check.sh: quickstart on node 1 failed" >&2
        cleanup_distributed
        return 1
    }

    echo "=== [distributed] node 2: must warm over the network ==="
    KERNEL_LAUNCHER_WISDOM_SERVER="$server" \
        KERNEL_LAUNCHER_CACHE=readwrite KERNEL_LAUNCHER_CACHE_DIR="$tmp/cache2" \
        "$dir/examples/quickstart" > "$tmp/node2.out" || {
        echo "check.sh: quickstart on node 2 failed" >&2
        cleanup_distributed
        return 1
    }
    if ! grep -q "compile 0 ms" "$tmp/node2.out"; then
        echo "check.sh: node 2 compiled instead of fetching:" >&2
        head -1 "$tmp/node2.out" >&2
        cleanup_distributed
        return 1
    fi
    "$dir/tools/kl-cache" --remote "$server" stats | grep -Eq "\"artifact-get\": [1-9]" || {
        echo "check.sh: daemon never served an artifact" >&2
        cleanup_distributed
        return 1
    }

    cleanup_distributed
    daemon_pid=""
    echo "check.sh: distributed stage passed"
}

run_variant() {
    local name=$1
    local dir="$repo/build-check-$name"
    local -a config=()
    case "$name" in
        default) ;;
        thread) config=(-DKL_SANITIZE=thread) ;;
        address) config=(-DKL_SANITIZE=address) ;;
        lint-graphs) run_lint_graphs; return $? ;;
        mem-stress) run_mem_stress; return $? ;;
        distributed) run_distributed; return $? ;;
        *)
            echo "check.sh: unknown variant '$name' (want default|thread|address|lint-graphs|mem-stress|distributed)" >&2
            return 2
            ;;
    esac

    echo "=== [$name] configure ==="
    cmake -B "$dir" -S "$repo" "${config[@]}" || return 1
    echo "=== [$name] build ==="
    cmake --build "$dir" -j "$jobs" || return 1
    echo "=== [$name] ctest ==="
    (cd "$dir" && ctest --output-on-failure -j "$jobs") || return 1
}

for v in "${variants[@]}"; do
    run_variant "$v" || {
        echo "check.sh: variant '$v' FAILED" >&2
        exit 1
    }
done

echo "check.sh: all variants passed (${variants[*]})"
