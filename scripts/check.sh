#!/usr/bin/env bash
# Full verification matrix: build and run the whole ctest suite three
# ways — the default build, a ThreadSanitizer build (-DKL_SANITIZE=thread)
# and an AddressSanitizer+UBSan build (-DKL_SANITIZE=address).
#
# Usage:  scripts/check.sh [default|thread|address]...
#         (no arguments runs all three)
#
# Each variant configures into its own build directory (build-check-NAME)
# so the matrix never disturbs an existing build/ tree. Exits non-zero on
# the first failing variant.
set -u

repo=$(cd "$(dirname "$0")/.." && pwd)
jobs=${JOBS:-$(getconf _NPROCESSORS_ONLN 2> /dev/null || nproc 2> /dev/null || echo 4)}

variants=("$@")
if [ ${#variants[@]} -eq 0 ]; then
    variants=(default thread address)
fi

run_variant() {
    local name=$1
    local dir="$repo/build-check-$name"
    local -a config=()
    case "$name" in
        default) ;;
        thread) config=(-DKL_SANITIZE=thread) ;;
        address) config=(-DKL_SANITIZE=address) ;;
        *)
            echo "check.sh: unknown variant '$name' (want default|thread|address)" >&2
            return 2
            ;;
    esac

    echo "=== [$name] configure ==="
    cmake -B "$dir" -S "$repo" "${config[@]}" || return 1
    echo "=== [$name] build ==="
    cmake --build "$dir" -j "$jobs" || return 1
    echo "=== [$name] ctest ==="
    (cd "$dir" && ctest --output-on-failure -j "$jobs") || return 1
}

for v in "${variants[@]}"; do
    run_variant "$v" || {
        echo "check.sh: variant '$v' FAILED" >&2
        exit 1
    }
done

echo "check.sh: all variants passed (${variants[*]})"
