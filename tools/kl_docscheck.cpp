// kl-docscheck: static consistency checks for the repository documentation,
// run as part of the ctest suite so the docs cannot silently rot.
//
// Checks, over README.md and every markdown file under docs/:
//   1. Relative links point at files that exist.
//   2. Anchor links (`file.md#section`, `#section`) match a heading in the
//      target file, using GitHub's heading-slug rules.
//   3. Every KERNEL_LAUNCHER_* environment variable referenced anywhere in
//      src/, tools/, tests/ or scripts/ appears in README.md (the
//      single-table contract: "all runtime behavior knobs in one place"),
//      and every variable any markdown file mentions exists in the
//      sources — both directions.
//   4. Every binary built under tools/ (each add_executable target in
//      tools/CMakeLists.txt) has a README *heading* naming it — a new CLI
//      cannot ship without its own section, a passing mention is not
//      enough.
//   5. Every markdown file under docs/ is linked from README.md (by its
//      repo-relative path), so a new document cannot ship without an
//      entry in the README's document index.
//
// Usage:
//   kl-docscheck [repo-root]          (default: current directory)
//
// Exit status: 0 clean, 1 findings, 2 usage or I/O error.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/errors.hpp"
#include "util/fs.hpp"

namespace stdfs = std::filesystem;

namespace {

struct Finding {
    std::string file;
    size_t line = 0;
    std::string message;
};

/// Lines of `text`, with a flag marking lines inside ``` fences (those are
/// code, not prose: links and headings in them are not checked, but env
/// var mentions still count — docs document variables in code blocks too).
struct DocLine {
    std::string text;
    size_t number = 0;
    bool fenced = false;
};

std::vector<DocLine> split_doc_lines(const std::string& content) {
    std::vector<DocLine> lines;
    std::string current;
    size_t number = 1;
    bool fenced = false;
    auto flush = [&] {
        bool is_fence = current.rfind("```", 0) == 0 || current.rfind("~~~", 0) == 0;
        if (is_fence) {
            fenced = !fenced;
        }
        lines.push_back({current, number, fenced || is_fence});
        current.clear();
        number++;
    };
    for (char c : content) {
        if (c == '\n') {
            flush();
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty()) {
        flush();
    }
    return lines;
}

/// GitHub's heading-to-anchor slug: lowercase, punctuation removed,
/// spaces become hyphens; repeated headings get -1, -2, ... suffixes.
std::string slugify(const std::string& heading) {
    std::string slug;
    for (char c : heading) {
        unsigned char u = static_cast<unsigned char>(c);
        if (std::isalnum(u)) {
            slug.push_back(static_cast<char>(std::tolower(u)));
        } else if (c == ' ' || c == '-') {
            slug.push_back('-');
        } else if (c == '_') {
            slug.push_back('_');
        }
        // everything else (backticks, dots, slashes, colons, ...) drops out
    }
    return slug;
}

/// All anchor slugs of one markdown file.
std::set<std::string> heading_anchors(const std::vector<DocLine>& lines) {
    std::set<std::string> anchors;
    std::map<std::string, int> seen;
    for (const DocLine& line : lines) {
        if (line.fenced) {
            continue;
        }
        size_t hashes = 0;
        while (hashes < line.text.size() && line.text[hashes] == '#') {
            hashes++;
        }
        if (hashes == 0 || hashes > 6 || hashes >= line.text.size()
            || line.text[hashes] != ' ') {
            continue;
        }
        std::string slug = slugify(line.text.substr(hashes + 1));
        int n = seen[slug]++;
        anchors.insert(n == 0 ? slug : slug + "-" + std::to_string(n));
    }
    return anchors;
}

/// Markdown links on one line: every `[...](target)`, including images.
std::vector<std::string> extract_links(const std::string& line) {
    std::vector<std::string> targets;
    size_t pos = 0;
    while ((pos = line.find('[', pos)) != std::string::npos) {
        size_t close = line.find(']', pos);
        if (close == std::string::npos) {
            break;
        }
        if (close + 1 >= line.size() || line[close + 1] != '(') {
            pos = close + 1;
            continue;
        }
        size_t end = line.find(')', close + 2);
        if (end == std::string::npos) {
            break;
        }
        std::string target = line.substr(close + 2, end - close - 2);
        // Strip an optional title: [text](file.md "title")
        size_t space = target.find(' ');
        if (space != std::string::npos) {
            target = target.substr(0, space);
        }
        targets.push_back(target);
        pos = end + 1;
    }
    return targets;
}

bool is_external(const std::string& target) {
    return target.rfind("http://", 0) == 0 || target.rfind("https://", 0) == 0
        || target.rfind("mailto:", 0) == 0;
}

/// KERNEL_LAUNCHER_* identifiers in a blob of text.
std::set<std::string> extract_env_vars(const std::string& text) {
    static const std::string kPrefix = "KERNEL_LAUNCHER_";
    std::set<std::string> vars;
    size_t pos = 0;
    while ((pos = text.find(kPrefix, pos)) != std::string::npos) {
        // Must not be the tail of a longer identifier.
        if (pos > 0) {
            char before = text[pos - 1];
            if (std::isalnum(static_cast<unsigned char>(before)) || before == '_') {
                pos += kPrefix.size();
                continue;
            }
        }
        size_t end = pos + kPrefix.size();
        while (end < text.size()
               && (std::isupper(static_cast<unsigned char>(text[end]))
                   || std::isdigit(static_cast<unsigned char>(text[end]))
                   || text[end] == '_')) {
            end++;
        }
        if (end > pos + kPrefix.size()) {
            std::string var = text.substr(pos, end - pos);
            while (!var.empty() && var.back() == '_') {
                var.pop_back();  // "KERNEL_LAUNCHER_" used as a prose prefix
            }
            if (var.size() > kPrefix.size()) {
                vars.insert(var);
            }
        }
        pos = end;
    }
    return vars;
}

std::vector<std::string> markdown_files(const std::string& root) {
    std::vector<std::string> files;
    const std::string readme = kl::path_join(root, "README.md");
    if (kl::file_exists(readme)) {
        files.push_back(readme);
    }
    const stdfs::path docs = stdfs::path(root) / "docs";
    if (stdfs::is_directory(docs)) {
        for (const auto& entry : stdfs::recursive_directory_iterator(docs)) {
            if (entry.is_regular_file() && entry.path().extension() == ".md") {
                files.push_back(entry.path().string());
            }
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

std::vector<std::string> source_files(const std::string& root) {
    std::vector<std::string> files;
    for (const char* dir : {"src", "tools", "tests", "scripts"}) {
        const stdfs::path base = stdfs::path(root) / dir;
        if (!stdfs::is_directory(base)) {
            continue;
        }
        for (const auto& entry : stdfs::recursive_directory_iterator(base)) {
            if (!entry.is_regular_file()) {
                continue;
            }
            const std::string ext = entry.path().extension().string();
            if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cu"
                || ext == ".sh") {
                files.push_back(entry.path().string());
            }
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

/// Names of the add_executable targets declared in tools/CMakeLists.txt.
std::vector<std::string> tool_targets(const std::string& root) {
    std::vector<std::string> targets;
    const std::string path = kl::path_join(root, "tools/CMakeLists.txt");
    if (!kl::file_exists(path)) {
        return targets;
    }
    const std::string text = kl::read_text_file(path);
    static const std::string kMarker = "add_executable(";
    size_t pos = 0;
    while ((pos = text.find(kMarker, pos)) != std::string::npos) {
        size_t start = pos + kMarker.size();
        size_t end = start;
        while (end < text.size() && !std::isspace(static_cast<unsigned char>(text[end]))
               && text[end] != ')') {
            end++;
        }
        if (end > start) {
            targets.push_back(text.substr(start, end - start));
        }
        pos = end;
    }
    std::sort(targets.begin(), targets.end());
    return targets;
}

void check_links(
    const std::string& root,
    const std::string& file,
    const std::vector<DocLine>& lines,
    const std::set<std::string>& own_anchors,
    std::vector<Finding>& findings) {
    const stdfs::path dir = stdfs::path(file).parent_path();
    for (const DocLine& line : lines) {
        if (line.fenced) {
            continue;
        }
        for (const std::string& target : extract_links(line.text)) {
            if (target.empty() || is_external(target)) {
                continue;
            }
            const size_t hash = target.find('#');
            const std::string path_part =
                hash == std::string::npos ? target : target.substr(0, hash);
            const std::string anchor =
                hash == std::string::npos ? "" : target.substr(hash + 1);

            if (path_part.empty()) {
                // Same-file anchor.
                if (!anchor.empty() && own_anchors.count(anchor) == 0) {
                    findings.push_back(
                        {file, line.number, "broken anchor '#" + anchor + "'"});
                }
                continue;
            }

            const stdfs::path resolved = path_part[0] == '/'
                ? stdfs::path(root) / path_part.substr(1)
                : dir / path_part;
            if (!stdfs::exists(resolved)) {
                findings.push_back(
                    {file, line.number, "broken link '" + target + "' (no such file)"});
                continue;
            }
            if (!anchor.empty() && resolved.extension() == ".md") {
                std::set<std::string> anchors = heading_anchors(
                    split_doc_lines(kl::read_text_file(resolved.string())));
                if (anchors.count(anchor) == 0) {
                    findings.push_back(
                        {file,
                         line.number,
                         "broken anchor '" + target + "' (no such heading)"});
                }
            }
        }
    }
}

}  // namespace

int main(int argc, char** argv) {
    std::string root = ".";
    if (argc == 2) {
        root = argv[1];
    } else if (argc > 2) {
        std::fprintf(stderr, "usage: kl-docscheck [repo-root]\n");
        return 2;
    }

    try {
        std::vector<Finding> findings;

        const std::vector<std::string> docs = markdown_files(root);
        if (docs.empty()) {
            std::fprintf(stderr, "kl-docscheck: no markdown files under '%s'\n", root.c_str());
            return 2;
        }

        // Pass 1: links and anchors.
        std::map<std::string, std::set<std::string>> doc_env_vars;
        std::set<std::string> all_doc_vars;
        for (const std::string& file : docs) {
            const std::string content = kl::read_text_file(file);
            const std::vector<DocLine> lines = split_doc_lines(content);
            check_links(root, file, lines, heading_anchors(lines), findings);
            std::set<std::string> vars = extract_env_vars(content);
            all_doc_vars.insert(vars.begin(), vars.end());
            doc_env_vars.emplace(file, std::move(vars));
        }

        // Pass 2: env vars named in the sources.
        std::map<std::string, std::string> src_var_origin;
        for (const std::string& file : source_files(root)) {
            for (const std::string& var : extract_env_vars(kl::read_text_file(file))) {
                src_var_origin.emplace(var, file);
            }
        }

        // Both directions: undocumented source vars, phantom doc vars.
        // The forward direction is checked against README.md specifically:
        // its environment table is documented as the one place listing
        // every knob, so "mentioned in some other doc" does not count.
        const std::string readme_key = kl::path_join(root, "README.md");
        const auto readme_vars_it = doc_env_vars.find(readme_key);
        for (const auto& [var, origin] : src_var_origin) {
            if (readme_vars_it == doc_env_vars.end()
                || readme_vars_it->second.count(var) == 0) {
                findings.push_back(
                    {origin,
                     0,
                     "environment variable " + var
                         + " is missing from the README's environment table"});
            }
        }
        for (const auto& [file, vars] : doc_env_vars) {
            for (const std::string& var : vars) {
                if (src_var_origin.count(var) == 0) {
                    findings.push_back(
                        {file, 0, "documented variable " + var + " does not exist in src/"});
                }
            }
        }

        // Pass 3: every tools/ binary has its own README section — some
        // heading must name it.
        const std::string readme_path = kl::path_join(root, "README.md");
        const std::vector<std::string> tools = tool_targets(root);
        if (kl::file_exists(readme_path)) {
            const std::string readme = kl::read_text_file(readme_path);
            std::vector<std::string> headings;
            for (const DocLine& line : split_doc_lines(readme)) {
                if (!line.fenced && !line.text.empty() && line.text[0] == '#') {
                    headings.push_back(line.text);
                }
            }
            for (const std::string& tool : tools) {
                const bool has_section = std::any_of(
                    headings.begin(), headings.end(), [&](const std::string& heading) {
                        return heading.find(tool) != std::string::npos;
                    });
                if (!has_section) {
                    findings.push_back(
                        {readme_path,
                         0,
                         "tools binary '" + tool
                             + "' has no README section (no heading names it)"});
                }
            }

            // Pass 5: every docs/*.md is reachable from the README's
            // document index.
            for (const std::string& doc : docs) {
                const std::string rel =
                    stdfs::path(doc).lexically_relative(stdfs::path(root)).generic_string();
                if (rel.rfind("docs/", 0) != 0) {
                    continue;  // the README itself
                }
                if (readme.find(rel) == std::string::npos) {
                    findings.push_back(
                        {readme_path, 0, "document '" + rel + "' is not linked from the README"});
                }
            }
        }

        for (const Finding& finding : findings) {
            if (finding.line > 0) {
                std::fprintf(
                    stderr,
                    "%s:%zu: %s\n",
                    finding.file.c_str(),
                    finding.line,
                    finding.message.c_str());
            } else {
                std::fprintf(stderr, "%s: %s\n", finding.file.c_str(), finding.message.c_str());
            }
        }
        if (findings.empty()) {
            std::printf(
                "kl-docscheck: %zu markdown files, %zu env vars, %zu tools, all consistent\n",
                docs.size(),
                src_var_origin.size(),
                tools.size());
            return 0;
        }
        std::fprintf(stderr, "kl-docscheck: %zu findings\n", findings.size());
        return 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "kl-docscheck: %s\n", e.what());
        return 2;
    }
}
