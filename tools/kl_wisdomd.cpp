// kl-wisdomd: the distributed wisdom & compile-cache daemon
// (src/netwisdom/, docs/DISTRIBUTED.md). Serves tuned-configuration
// answers and compiled-instance artifacts to every process that sets
// KERNEL_LAUNCHER_WISDOM_SERVER=host:port — tune once, warm a fleet.
//
// Usage:
//   kl-wisdomd [--bind ADDR] [--port PORT] [--dir DIR] [--wisdom-dir DIR]
//              [--port-file FILE] [--verbose]
//
//   --bind ADDR       listen address (default 127.0.0.1)
//   --port PORT       listen port; 0 picks an ephemeral port (default 0)
//   --dir DIR         persist artifacts as <id>.json in DIR (rtccache
//                     entry layout, so an existing cache directory seeds
//                     the daemon); default: in-memory only
//   --wisdom-dir DIR  persist aggregated wisdom as <kernel>.wisdom.json
//                     in DIR; default: in-memory only
//   --port-file FILE  write the bound port to FILE once listening
//                     (how scripts discover an ephemeral port)
//   --verbose         log one line per request to stderr
//
// Prints "kl-wisdomd listening on ADDR:PORT" on stdout once ready, then
// serves until SIGINT/SIGTERM. Exit status: 0 on clean shutdown, 1 when
// the address cannot be bound, 2 on usage errors.

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "netwisdom/server.hpp"
#include "util/errors.hpp"
#include "util/fs.hpp"

namespace {

std::atomic<bool> g_stop {false};

void handle_signal(int) {
    g_stop.store(true);
}

void usage(std::FILE* out) {
    std::fprintf(
        out,
        "usage: kl-wisdomd [--bind ADDR] [--port PORT] [--dir DIR]\n"
        "                  [--wisdom-dir DIR] [--port-file FILE] [--verbose]\n");
}

}  // namespace

int main(int argc, char** argv) {
    kl::netwisdom::ServerOptions options;
    std::string port_file;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        auto next = [&](const char* what) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "kl-wisdomd: %s requires a value\n", what);
                usage(stderr);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--bind") {
            options.bind_address = next("--bind");
        } else if (arg == "--port") {
            options.port = static_cast<uint16_t>(std::atoi(next("--port")));
        } else if (arg == "--dir") {
            options.artifact_dir = next("--dir");
        } else if (arg == "--wisdom-dir") {
            options.wisdom_dir = next("--wisdom-dir");
        } else if (arg == "--port-file") {
            port_file = next("--port-file");
        } else if (arg == "--verbose") {
            options.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else {
            std::fprintf(stderr, "kl-wisdomd: unknown option '%s'\n", arg.c_str());
            usage(stderr);
            return 2;
        }
    }

    signal(SIGINT, handle_signal);
    signal(SIGTERM, handle_signal);

    try {
        kl::netwisdom::Server server(options);
        server.start();
        std::printf(
            "kl-wisdomd listening on %s:%u\n",
            options.bind_address.c_str(),
            static_cast<unsigned>(server.port()));
        std::fflush(stdout);
        if (!port_file.empty()) {
            kl::write_text_file(port_file, std::to_string(server.port()) + "\n");
        }
        while (!g_stop.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
        server.stop();
        const kl::json::Value stats = server.stats();
        std::fprintf(stderr, "kl-wisdomd: shut down; %s\n", stats.dump().c_str());
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "kl-wisdomd: %s\n", e.what());
        return 1;
    }
}
