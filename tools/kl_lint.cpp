// kl-lint: standalone front end of the static kernel-definition analysis.
//
// Usage:
//   kl-lint --builtin                 lint every kernel definition shipped
//                                     with the repository (the example
//                                     kernels and the MicroHH stencils)
//   kl-lint [options] file.cu ...     lint #pragma kernel_launcher-annotated
//                                     CUDA sources
//   kl-lint --graph graph.json ...    run the KL006-KL009 graph data-flow
//                                     analysis over JSON graph descriptions
//                                     (docs/LINTING.md documents the format)
//
// Options:
//   --kernel NAME    kernel name for annotated sources (default: file stem)
//   --wisdom FILE    also check FILE against the linted definition (KL005);
//                    requires exactly one definition
//   --device NAME    restrict device resource checks to NAME (repeatable)
//   --format FMT     output format: text (default, human-readable to
//                    stderr) or json (stable schema to stdout)
//   --strict         exit nonzero on warnings as well as errors
//   --no-notes       suppress note-severity findings
//
// Exit status: 0 clean (notes/warnings allowed unless --strict), 1 findings
// at the failing severity, 2 usage or I/O error.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "analysis/graph_lint.hpp"
#include "analysis/lint.hpp"
#include "core/pragma.hpp"
#include "microhh/definitions.hpp"
#include "microhh/kernels.hpp"
#include "nvrtcsim/registry.hpp"
#include "util/errors.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"

namespace {

namespace klc = kl::core;
namespace kla = kl::analysis;

struct Options {
    bool builtin = false;
    bool graph = false;
    bool strict = false;
    bool notes = true;
    bool json_output = false;
    std::string kernel_name;
    std::string wisdom_path;
    std::vector<std::string> devices;
    std::vector<std::string> files;
};

void usage(std::FILE* out) {
    std::fprintf(
        out,
        "usage: kl-lint --builtin | kl-lint [--kernel NAME] [--wisdom FILE]\n"
        "               [--device NAME]... [--format text|json] [--strict]\n"
        "               [--no-notes] file.cu ...\n"
        "       kl-lint --graph [--format text|json] [--strict] graph.json ...\n");
}

std::string file_stem(const std::string& path) {
    size_t slash = path.find_last_of('/');
    std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
    size_t dot = base.find_last_of('.');
    return dot == std::string::npos ? base : base.substr(0, dot);
}

/// The kernel definitions shipped with the repository: the example kernels
/// (mirroring quickstart.cpp / annotated_kernel.cpp) and the four MicroHH
/// stencil variants of the paper's Table 2.
std::vector<klc::KernelDef> builtin_definitions() {
    kl::rtc::register_builtin_kernels();
    kl::microhh::register_microhh_kernels();
    std::vector<klc::KernelDef> defs;

    {
        // vector_add, as defined in examples/quickstart.cpp (Listing 3).
        klc::KernelBuilder builder(
            "vector_add",
            klc::KernelSource::inline_source(
                "vector_add.cu", kl::rtc::builtin_kernel_source("vector_add")));
        auto block_size = builder.tune("block_size", {32, 64, 128, 256, 1024});
        builder.problem_size(klc::arg3)
            .template_args(block_size)
            .block_size(block_size)
            .output_arg(0);
        defs.push_back(builder.build());
    }
    {
        // saxpy over a preprocessor-defined block size.
        klc::KernelBuilder builder(
            "saxpy",
            klc::KernelSource::inline_source(
                "saxpy.cu", kl::rtc::builtin_kernel_source("saxpy")));
        auto block_size = builder.tune("BLOCK_SIZE", {64, 128, 256, 512});
        builder.problem_size(klc::arg3).block_size(block_size).output_arg(0);
        defs.push_back(builder.build());
    }
    {
        // copy3d with a templated element type and a 3D block.
        klc::KernelBuilder builder(
            "copy3d",
            klc::KernelSource::inline_source(
                "copy3d.cu", kl::rtc::builtin_kernel_source("copy3d")));
        auto bx = builder.tune("BLOCK_SIZE_X", {8, 16, 32, 64});
        auto by = builder.tune("BLOCK_SIZE_Y", {1, 2, 4, 8});
        auto bz = builder.tune("BLOCK_SIZE_Z", {1, 2, 4});
        builder.restriction(bx * by * bz <= 1024);
        builder.problem_size(klc::arg2, klc::arg3, klc::arg4)
            .block_size(bx, by, bz)
            .template_args(klc::Expr("float"))
            .output_arg(0);
        defs.push_back(builder.build());
    }

    using kl::microhh::Precision;
    for (Precision precision : {Precision::Float32, Precision::Float64}) {
        defs.push_back(kl::microhh::make_advec_u_builder(precision).build());
        defs.push_back(kl::microhh::make_diff_uvw_builder(precision).build());
    }
    return defs;
}

int severity_rank(kla::Severity s) {
    return static_cast<int>(s);
}

// --- --graph mode -----------------------------------------------------------
//
// A graph description is a JSON file (docs/LINTING.md, "Linting graph
// descriptions"):
//
//   {
//     "buffers": {"a": 4096, "b": 4096, "c": 4096},
//     "nodes": [
//       {"kind": "htod", "dst": "a"},
//       {"kind": "htod", "dst": "b"},
//       {"kind": "launch", "name": "vector_add", "deps": [0, 1],
//        "reads": ["a", "b"], "writes": ["c"]},
//       {"kind": "dtoh", "src": "c", "deps": [2]}
//     ]
//   }
//
// Buffer references are a buffer name (the whole buffer) or
// {"buffer": "a", "offset": N, "bytes": M} for a sub-range. Kinds: launch
// (reads/writes/readwrites), htod (dst), dtoh (src), dtod (dst, src),
// memset (dst). kl-lint assigns each buffer a synthetic device address
// range and runs the same analysis the library runs at graph
// instantiation.

uint64_t align_up(uint64_t value, uint64_t alignment) {
    return (value + alignment - 1) / alignment * alignment;
}

kla::ByteInterval resolve_buffer_ref(
    const kl::json::Value& ref,
    const std::map<std::string, kla::ByteInterval>& buffers,
    const std::string& where) {
    if (ref.is_string()) {
        auto it = buffers.find(ref.as_string());
        if (it == buffers.end()) {
            throw kl::Error(where + ": unknown buffer '" + ref.as_string() + "'");
        }
        return it->second;
    }
    if (ref.is_object()) {
        const std::string name = ref["buffer"].as_string();
        auto it = buffers.find(name);
        if (it == buffers.end()) {
            throw kl::Error(where + ": unknown buffer '" + name + "'");
        }
        const uint64_t size = it->second.end - it->second.begin;
        const uint64_t offset = static_cast<uint64_t>(ref.get_int_or("offset", 0));
        const uint64_t bytes = static_cast<uint64_t>(
            ref.get_int_or("bytes", static_cast<int64_t>(size - offset)));
        if (offset > size || bytes > size - offset) {
            throw kl::Error(
                where + ": range [" + std::to_string(offset) + ", "
                + std::to_string(offset + bytes) + ") exceeds buffer '" + name
                + "' of " + std::to_string(size) + " bytes");
        }
        return {it->second.begin + offset, it->second.begin + offset + bytes};
    }
    throw kl::Error(where + ": buffer reference must be a name or an object");
}

std::vector<kla::NodeFootprint> parse_graph_description(const std::string& path) {
    kl::json::Value doc = kl::json::parse_file(path);

    // Synthetic, page-aligned, non-adjacent address ranges: distinct
    // buffers never alias, and off-by-one extents cannot touch a
    // neighboring buffer. std::map iterates names in sorted order, so
    // addresses (and with them diagnostics) are deterministic.
    std::map<std::string, kla::ByteInterval> buffers;
    uint64_t base = 0x10000000;
    if (const kl::json::Value* bufs = doc.find("buffers")) {
        for (const auto& [name, size] : bufs->as_object()) {
            const uint64_t bytes = static_cast<uint64_t>(size.as_int());
            buffers[name] = {base, base + bytes};
            base = align_up(base + bytes + 4096, 4096);
        }
    }

    std::vector<kla::NodeFootprint> nodes;
    for (const kl::json::Value& n : doc["nodes"].as_array()) {
        const std::string where = path + ": node #" + std::to_string(nodes.size());
        kla::NodeFootprint fp;
        if (const kl::json::Value* deps = n.find("deps")) {
            for (const kl::json::Value& d : deps->as_array()) {
                const int64_t dep = d.as_int();
                if (dep < 0 || static_cast<size_t>(dep) >= nodes.size()) {
                    throw kl::Error(
                        where + ": dependency " + std::to_string(dep)
                        + " must name an earlier node");
                }
                fp.deps.push_back(static_cast<size_t>(dep));
            }
        }
        auto collect = [&](const char* key, bool reads, bool writes) {
            if (const kl::json::Value* refs = n.find(key)) {
                for (const kl::json::Value& ref : refs->as_array()) {
                    kla::ByteInterval iv = resolve_buffer_ref(ref, buffers, where);
                    if (reads) {
                        fp.reads.push_back(iv);
                    }
                    if (writes) {
                        fp.writes.push_back(iv);
                    }
                }
            }
        };
        const std::string kind = n.get_string_or("kind", "");
        if (kind == "launch") {
            fp.label = "kernel '" + n.get_string_or("name", "anonymous") + "'";
            collect("reads", true, false);
            collect("writes", false, true);
            collect("readwrites", true, true);
        } else if (kind == "htod") {
            fp.label = "memcpy htod";
            fp.writes.push_back(resolve_buffer_ref(n["dst"], buffers, where));
        } else if (kind == "dtoh") {
            fp.label = "memcpy dtoh";
            fp.reads.push_back(resolve_buffer_ref(n["src"], buffers, where));
            fp.copies_out = true;
        } else if (kind == "dtod") {
            fp.label = "memcpy dtod";
            fp.reads.push_back(resolve_buffer_ref(n["src"], buffers, where));
            fp.writes.push_back(resolve_buffer_ref(n["dst"], buffers, where));
        } else if (kind == "memset") {
            fp.label = "memset";
            fp.writes.push_back(resolve_buffer_ref(n["dst"], buffers, where));
        } else {
            throw kl::Error(
                where + ": unknown kind '" + kind
                + "' (want launch|htod|dtoh|dtod|memset)");
        }
        nodes.push_back(std::move(fp));
    }
    return nodes;
}

/// The --format=json document (docs/LINTING.md, "JSON output"):
/// diagnostics in deterministic (code, subject) order, plus a summary.
/// Printed to stdout; findings never go to stderr in this mode.
void print_json_report(
    std::vector<kla::Diagnostic> diagnostics,
    size_t definitions,
    size_t graph_nodes,
    bool graph_mode) {
    kla::sort_diagnostics(diagnostics);
    kl::json::Value doc = kl::json::Value::object();
    kl::json::Value list = kl::json::Value::array();
    for (const kla::Diagnostic& d : diagnostics) {
        list.push_back(d.to_json());
    }
    doc["diagnostics"] = std::move(list);
    kl::json::Value summary = kl::json::Value::object();
    summary["definitions"] = static_cast<int64_t>(definitions);
    if (graph_mode) {
        summary["nodes"] = static_cast<int64_t>(graph_nodes);
    }
    summary["errors"] =
        static_cast<int64_t>(kla::count_severity(diagnostics, kla::Severity::Error));
    summary["warnings"] =
        static_cast<int64_t>(kla::count_severity(diagnostics, kla::Severity::Warning));
    summary["notes"] =
        static_cast<int64_t>(kla::count_severity(diagnostics, kla::Severity::Note));
    doc["summary"] = std::move(summary);
    std::fprintf(stdout, "%s\n", doc.dump_pretty().c_str());
}

}  // namespace

int main(int argc, char** argv) {
    Options opts;
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto next = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "kl-lint: %s requires an argument\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg.rfind("--format=", 0) == 0) {
            std::string value = arg.substr(9);
            if (value == "json") {
                opts.json_output = true;
            } else if (value != "text") {
                std::fprintf(
                    stderr, "kl-lint: unknown format '%s' (want text or json)\n",
                    value.c_str());
                return 2;
            }
            continue;
        }
        if (arg == "--builtin") {
            opts.builtin = true;
        } else if (arg == "--graph") {
            opts.graph = true;
        } else if (arg == "--strict") {
            opts.strict = true;
        } else if (arg == "--no-notes") {
            opts.notes = false;
        } else if (arg == "--format") {
            std::string value = next("--format");
            if (value == "json") {
                opts.json_output = true;
            } else if (value != "text") {
                std::fprintf(
                    stderr, "kl-lint: unknown format '%s' (want text or json)\n",
                    value.c_str());
                return 2;
            }
        } else if (arg == "--kernel") {
            opts.kernel_name = next("--kernel");
        } else if (arg == "--wisdom") {
            opts.wisdom_path = next("--wisdom");
        } else if (arg == "--device") {
            opts.devices.emplace_back(next("--device"));
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "kl-lint: unknown option '%s'\n", arg.c_str());
            usage(stderr);
            return 2;
        } else {
            opts.files.push_back(arg);
        }
    }
    if ((!opts.builtin && opts.files.empty()) || (opts.graph && opts.builtin)) {
        usage(stderr);
        return 2;
    }

    if (opts.graph) {
        std::vector<kla::Diagnostic> diagnostics;
        size_t node_count = 0;
        try {
            for (const std::string& file : opts.files) {
                std::vector<kla::NodeFootprint> nodes = parse_graph_description(file);
                node_count += nodes.size();
                std::vector<kla::Diagnostic> d = kla::lint_footprints(nodes);
                diagnostics.insert(diagnostics.end(), d.begin(), d.end());
            }
        } catch (const kl::Error& e) {
            std::fprintf(stderr, "kl-lint: %s\n", e.what());
            return 2;
        }
        if (opts.json_output) {
            print_json_report(diagnostics, 0, node_count, /*graph_mode=*/true);
        } else {
            for (const kla::Diagnostic& d : diagnostics) {
                if (!opts.notes && d.severity == kla::Severity::Note) {
                    continue;
                }
                std::fprintf(stderr, "%s\n", d.render().c_str());
            }
            std::fprintf(
                stderr,
                "kl-lint: %zu graph node(s): %zu error(s), %zu warning(s), %zu note(s)\n",
                node_count,
                kla::count_severity(diagnostics, kla::Severity::Error),
                kla::count_severity(diagnostics, kla::Severity::Warning),
                kla::count_severity(diagnostics, kla::Severity::Note));
        }
        const size_t errors = kla::count_severity(diagnostics, kla::Severity::Error);
        const size_t warnings = kla::count_severity(diagnostics, kla::Severity::Warning);
        return errors > 0 || (opts.strict && warnings > 0) ? 1 : 0;
    }

    kla::LintOptions lint_options;
    for (const std::string& name : opts.devices) {
        if (!kl::sim::DeviceRegistry::global().contains(name)) {
            std::fprintf(stderr, "kl-lint: unknown device '%s'; known devices:\n",
                         name.c_str());
            for (const auto& d : kl::sim::DeviceRegistry::global().all()) {
                std::fprintf(stderr, "  %s\n", d.name.c_str());
            }
            return 2;
        }
        lint_options.devices.push_back(kl::sim::DeviceRegistry::global().by_name(name));
    }

    std::vector<klc::KernelDef> defs;
    std::vector<kla::Diagnostic> diagnostics;
    try {
        if (opts.builtin) {
            defs = builtin_definitions();
            for (const klc::KernelDef& def : defs) {
                std::vector<kla::Diagnostic> d = kla::lint_kernel(def, lint_options);
                diagnostics.insert(diagnostics.end(), d.begin(), d.end());
            }
        }
        for (const std::string& file : opts.files) {
            std::string name =
                opts.kernel_name.empty() ? file_stem(file) : opts.kernel_name;
            std::vector<kla::Diagnostic> d = kla::lint_annotated_source(
                name, klc::KernelSource(file), lint_options);
            diagnostics.insert(diagnostics.end(), d.begin(), d.end());
            // Track the definition for --wisdom when the source parses.
            if (!kla::has_errors(d)) {
                try {
                    defs.push_back(
                        klc::builder_from_annotated_source(name, klc::KernelSource(file))
                            .build());
                } catch (const kl::Error&) {
                    // already reported as a KL000 diagnostic
                }
            }
        }
        if (!opts.wisdom_path.empty()) {
            if (defs.size() != 1) {
                std::fprintf(
                    stderr,
                    "kl-lint: --wisdom requires exactly one linted definition "
                    "(got %zu)\n",
                    defs.size());
                return 2;
            }
            klc::WisdomFile wisdom =
                klc::WisdomFile::load(opts.wisdom_path, defs.front().key());
            std::vector<kla::Diagnostic> d =
                kla::lint_wisdom(defs.front(), wisdom, opts.wisdom_path, lint_options);
            diagnostics.insert(diagnostics.end(), d.begin(), d.end());
        }
    } catch (const kl::Error& e) {
        std::fprintf(stderr, "kl-lint: %s\n", e.what());
        return 2;
    }

    if (opts.json_output) {
        print_json_report(diagnostics, defs.size(), 0, /*graph_mode=*/false);
    } else {
        // Most severe first, stable within a severity.
        std::stable_sort(
            diagnostics.begin(),
            diagnostics.end(),
            [](const kla::Diagnostic& a, const kla::Diagnostic& b) {
                return severity_rank(a.severity) > severity_rank(b.severity);
            });
        for (const kla::Diagnostic& d : diagnostics) {
            if (!opts.notes && d.severity == kla::Severity::Note) {
                continue;
            }
            std::fprintf(stderr, "%s\n", d.render().c_str());
        }
        std::fprintf(
            stderr,
            "kl-lint: %zu definition(s): %zu error(s), %zu warning(s), %zu note(s)\n",
            defs.size(),
            kla::count_severity(diagnostics, kla::Severity::Error),
            kla::count_severity(diagnostics, kla::Severity::Warning),
            kla::count_severity(diagnostics, kla::Severity::Note));
    }

    size_t errors = kla::count_severity(diagnostics, kla::Severity::Error);
    size_t warnings = kla::count_severity(diagnostics, kla::Severity::Warning);

    if (errors > 0 || (opts.strict && warnings > 0)) {
        return 1;
    }
    return 0;
}
