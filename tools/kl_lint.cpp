// kl-lint: standalone front end of the static kernel-definition analysis.
//
// Usage:
//   kl-lint --builtin                 lint every kernel definition shipped
//                                     with the repository (the example
//                                     kernels and the MicroHH stencils)
//   kl-lint [options] file.cu ...     lint #pragma kernel_launcher-annotated
//                                     CUDA sources
//
// Options:
//   --kernel NAME    kernel name for annotated sources (default: file stem)
//   --wisdom FILE    also check FILE against the linted definition (KL005);
//                    requires exactly one definition
//   --device NAME    restrict device resource checks to NAME (repeatable)
//   --strict         exit nonzero on warnings as well as errors
//   --no-notes       suppress note-severity findings
//
// Exit status: 0 clean (notes/warnings allowed unless --strict), 1 findings
// at the failing severity, 2 usage or I/O error.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "core/pragma.hpp"
#include "microhh/definitions.hpp"
#include "microhh/kernels.hpp"
#include "nvrtcsim/registry.hpp"
#include "util/errors.hpp"
#include "util/fs.hpp"

namespace {

namespace klc = kl::core;
namespace kla = kl::analysis;

struct Options {
    bool builtin = false;
    bool strict = false;
    bool notes = true;
    std::string kernel_name;
    std::string wisdom_path;
    std::vector<std::string> devices;
    std::vector<std::string> files;
};

void usage(std::FILE* out) {
    std::fprintf(
        out,
        "usage: kl-lint --builtin | kl-lint [--kernel NAME] [--wisdom FILE]\n"
        "               [--device NAME]... [--strict] [--no-notes] file.cu ...\n");
}

std::string file_stem(const std::string& path) {
    size_t slash = path.find_last_of('/');
    std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
    size_t dot = base.find_last_of('.');
    return dot == std::string::npos ? base : base.substr(0, dot);
}

/// The kernel definitions shipped with the repository: the example kernels
/// (mirroring quickstart.cpp / annotated_kernel.cpp) and the four MicroHH
/// stencil variants of the paper's Table 2.
std::vector<klc::KernelDef> builtin_definitions() {
    kl::rtc::register_builtin_kernels();
    kl::microhh::register_microhh_kernels();
    std::vector<klc::KernelDef> defs;

    {
        // vector_add, as defined in examples/quickstart.cpp (Listing 3).
        klc::KernelBuilder builder(
            "vector_add",
            klc::KernelSource::inline_source(
                "vector_add.cu", kl::rtc::builtin_kernel_source("vector_add")));
        auto block_size = builder.tune("block_size", {32, 64, 128, 256, 1024});
        builder.problem_size(klc::arg3)
            .template_args(block_size)
            .block_size(block_size)
            .output_arg(0);
        defs.push_back(builder.build());
    }
    {
        // saxpy over a preprocessor-defined block size.
        klc::KernelBuilder builder(
            "saxpy",
            klc::KernelSource::inline_source(
                "saxpy.cu", kl::rtc::builtin_kernel_source("saxpy")));
        auto block_size = builder.tune("BLOCK_SIZE", {64, 128, 256, 512});
        builder.problem_size(klc::arg3).block_size(block_size).output_arg(0);
        defs.push_back(builder.build());
    }
    {
        // copy3d with a templated element type and a 3D block.
        klc::KernelBuilder builder(
            "copy3d",
            klc::KernelSource::inline_source(
                "copy3d.cu", kl::rtc::builtin_kernel_source("copy3d")));
        auto bx = builder.tune("BLOCK_SIZE_X", {8, 16, 32, 64});
        auto by = builder.tune("BLOCK_SIZE_Y", {1, 2, 4, 8});
        auto bz = builder.tune("BLOCK_SIZE_Z", {1, 2, 4});
        builder.restriction(bx * by * bz <= 1024);
        builder.problem_size(klc::arg2, klc::arg3, klc::arg4)
            .block_size(bx, by, bz)
            .template_args(klc::Expr("float"))
            .output_arg(0);
        defs.push_back(builder.build());
    }

    using kl::microhh::Precision;
    for (Precision precision : {Precision::Float32, Precision::Float64}) {
        defs.push_back(kl::microhh::make_advec_u_builder(precision).build());
        defs.push_back(kl::microhh::make_diff_uvw_builder(precision).build());
    }
    return defs;
}

int severity_rank(kla::Severity s) {
    return static_cast<int>(s);
}

}  // namespace

int main(int argc, char** argv) {
    Options opts;
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        auto next = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "kl-lint: %s requires an argument\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--builtin") {
            opts.builtin = true;
        } else if (arg == "--strict") {
            opts.strict = true;
        } else if (arg == "--no-notes") {
            opts.notes = false;
        } else if (arg == "--kernel") {
            opts.kernel_name = next("--kernel");
        } else if (arg == "--wisdom") {
            opts.wisdom_path = next("--wisdom");
        } else if (arg == "--device") {
            opts.devices.emplace_back(next("--device"));
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "kl-lint: unknown option '%s'\n", arg.c_str());
            usage(stderr);
            return 2;
        } else {
            opts.files.push_back(arg);
        }
    }
    if (!opts.builtin && opts.files.empty()) {
        usage(stderr);
        return 2;
    }

    kla::LintOptions lint_options;
    for (const std::string& name : opts.devices) {
        if (!kl::sim::DeviceRegistry::global().contains(name)) {
            std::fprintf(stderr, "kl-lint: unknown device '%s'; known devices:\n",
                         name.c_str());
            for (const auto& d : kl::sim::DeviceRegistry::global().all()) {
                std::fprintf(stderr, "  %s\n", d.name.c_str());
            }
            return 2;
        }
        lint_options.devices.push_back(kl::sim::DeviceRegistry::global().by_name(name));
    }

    std::vector<klc::KernelDef> defs;
    std::vector<kla::Diagnostic> diagnostics;
    try {
        if (opts.builtin) {
            defs = builtin_definitions();
            for (const klc::KernelDef& def : defs) {
                std::vector<kla::Diagnostic> d = kla::lint_kernel(def, lint_options);
                diagnostics.insert(diagnostics.end(), d.begin(), d.end());
            }
        }
        for (const std::string& file : opts.files) {
            std::string name =
                opts.kernel_name.empty() ? file_stem(file) : opts.kernel_name;
            std::vector<kla::Diagnostic> d = kla::lint_annotated_source(
                name, klc::KernelSource(file), lint_options);
            diagnostics.insert(diagnostics.end(), d.begin(), d.end());
            // Track the definition for --wisdom when the source parses.
            if (!kla::has_errors(d)) {
                try {
                    defs.push_back(
                        klc::builder_from_annotated_source(name, klc::KernelSource(file))
                            .build());
                } catch (const kl::Error&) {
                    // already reported as a KL000 diagnostic
                }
            }
        }
        if (!opts.wisdom_path.empty()) {
            if (defs.size() != 1) {
                std::fprintf(
                    stderr,
                    "kl-lint: --wisdom requires exactly one linted definition "
                    "(got %zu)\n",
                    defs.size());
                return 2;
            }
            klc::WisdomFile wisdom =
                klc::WisdomFile::load(opts.wisdom_path, defs.front().key());
            std::vector<kla::Diagnostic> d =
                kla::lint_wisdom(defs.front(), wisdom, opts.wisdom_path, lint_options);
            diagnostics.insert(diagnostics.end(), d.begin(), d.end());
        }
    } catch (const kl::Error& e) {
        std::fprintf(stderr, "kl-lint: %s\n", e.what());
        return 2;
    }

    // Most severe first, stable within a severity.
    std::stable_sort(
        diagnostics.begin(),
        diagnostics.end(),
        [](const kla::Diagnostic& a, const kla::Diagnostic& b) {
            return severity_rank(a.severity) > severity_rank(b.severity);
        });
    size_t printed = 0;
    for (const kla::Diagnostic& d : diagnostics) {
        if (!opts.notes && d.severity == kla::Severity::Note) {
            continue;
        }
        std::fprintf(stderr, "%s\n", d.render().c_str());
        printed++;
    }

    size_t errors = kla::count_severity(diagnostics, kla::Severity::Error);
    size_t warnings = kla::count_severity(diagnostics, kla::Severity::Warning);
    size_t notes = kla::count_severity(diagnostics, kla::Severity::Note);
    std::fprintf(
        stderr,
        "kl-lint: %zu definition(s): %zu error(s), %zu warning(s), %zu note(s)\n",
        defs.size(),
        errors,
        warnings,
        notes);
    (void) printed;

    if (errors > 0 || (opts.strict && warnings > 0)) {
        return 1;
    }
    return 0;
}
