// kl-cache: operator console of the persistent compile cache
// (src/rtccache/, docs/CACHING.md). Inspects and maintains the directory
// that KERNEL_LAUNCHER_CACHE=read|readwrite points launches at.
//
// Usage:
//   kl-cache [--dir DIR] [--remote HOST:PORT] <command>
//
// Commands:
//   stats           entry/byte/corruption totals of the directory (default);
//                   with --remote, the kl-wisdomd server's counters instead
//   ls              one line per entry, oldest first
//   verify          re-checksum every entry; exit 1 when any is damaged
//   prune [BYTES]   evict LRU entries down to BYTES (default: the
//                   configured KERNEL_LAUNCHER_CACHE_LIMIT)
//   clear           remove every entry, temp file and quarantined file
//   push            upload every valid local entry to --remote (seed or
//                   top up a kl-wisdomd artifact store, docs/DISTRIBUTED.md)
//   pull            download every artifact --remote holds into the local
//                   directory (pre-warm a node without launching anything)
//
// --dir defaults to KERNEL_LAUNCHER_CACHE_DIR, falling back to the same
// per-user default directory the library uses. push/pull default their
// remote to KERNEL_LAUNCHER_WISDOM_SERVER when --remote is absent; `stats`
// stays local unless --remote is passed explicitly.
//
// Exit status: 0 on success, 1 when verify finds damage or an operation
// fails (including an unreachable remote), 2 on usage errors.

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "netwisdom/client.hpp"
#include "rtccache/rtccache.hpp"
#include "util/errors.hpp"
#include "util/fs.hpp"

namespace {

using kl::rtccache::DiskCache;

void usage(std::FILE* out) {
    std::fprintf(
        out,
        "usage: kl-cache [--dir DIR] [--remote HOST:PORT]\n"
        "                [stats | ls | verify | prune [BYTES] | clear | push | pull]\n");
}

std::string human_bytes(uint64_t bytes) {
    char buffer[32];
    if (bytes >= (1ull << 20)) {
        std::snprintf(buffer, sizeof buffer, "%.1f MiB", double(bytes) / double(1ull << 20));
    } else if (bytes >= (1ull << 10)) {
        std::snprintf(buffer, sizeof buffer, "%.1f KiB", double(bytes) / double(1ull << 10));
    } else {
        std::snprintf(buffer, sizeof buffer, "%" PRIu64 " B", bytes);
    }
    return buffer;
}

int cmd_stats(const std::string& dir) {
    DiskCache::DirStats stats = DiskCache::stats(dir);
    std::printf("directory:   %s\n", dir.c_str());
    std::printf("entries:     %zu\n", stats.entries);
    std::printf("bytes:       %" PRIu64 " (%s)\n", stats.bytes, human_bytes(stats.bytes).c_str());
    std::printf("corrupt:     %zu\n", stats.corrupt);
    std::printf("quarantined: %zu\n", stats.quarantined);
    return 0;
}

int cmd_ls(const std::string& dir) {
    for (const DiskCache::EntryInfo& entry : DiskCache::scan(dir)) {
        if (entry.valid) {
            std::printf(
                "%s  %8" PRIu64 "  %-12s %-12s %s\n",
                entry.id.c_str(),
                entry.bytes,
                entry.device_arch.c_str(),
                entry.kernel.c_str(),
                entry.lowered_name.c_str());
        } else {
            std::printf("%s  %8" PRIu64 "  CORRUPT: %s\n",
                entry.id.c_str(), entry.bytes, entry.error.c_str());
        }
    }
    return 0;
}

int cmd_verify(const std::string& dir) {
    size_t checked = 0;
    size_t damaged = 0;
    for (const DiskCache::EntryInfo& entry : DiskCache::scan(dir)) {
        checked++;
        if (!entry.valid) {
            damaged++;
            std::printf("DAMAGED  %s: %s\n", entry.path.c_str(), entry.error.c_str());
        }
    }
    std::printf("%zu entries checked, %zu damaged\n", checked, damaged);
    return damaged == 0 ? 0 : 1;
}

int cmd_prune(const std::string& dir, uint64_t limit) {
    size_t removed = DiskCache::prune(dir, limit);
    std::printf(
        "evicted %zu entr%s (limit %s)\n",
        removed,
        removed == 1 ? "y" : "ies",
        human_bytes(limit).c_str());
    return 0;
}

int cmd_clear(const std::string& dir) {
    size_t removed = DiskCache::clear(dir);
    std::printf("removed %zu file%s\n", removed, removed == 1 ? "" : "s");
    return 0;
}

/// One CLI-wide client: generous timeouts (operator console, not launch
/// path) and no breaker cool-down surprise across commands.
kl::netwisdom::Client make_remote(const std::string& remote) {
    kl::netwisdom::Settings settings;
    settings.server = remote;
    settings.connect_timeout_ms = 2000;
    settings.io_timeout_ms = 10000;
    kl::netwisdom::parse_host_port(remote);  // usage errors should be loud
    return kl::netwisdom::Client(std::move(settings));
}

int cmd_remote_stats(const std::string& remote) {
    kl::netwisdom::Client client = make_remote(remote);
    const auto stats = client.server_stats();
    if (!stats) {
        std::fprintf(stderr, "kl-cache: cannot reach %s\n", remote.c_str());
        return 1;
    }
    std::printf("server:      %s\n", remote.c_str());
    std::printf("%s\n", stats->dump_pretty(2).c_str());
    return 0;
}

int cmd_push(const std::string& dir, const std::string& remote) {
    kl::netwisdom::Client client = make_remote(remote);
    size_t pushed = 0;
    size_t skipped = 0;
    size_t failed = 0;
    for (const DiskCache::EntryInfo& entry : DiskCache::scan(dir)) {
        if (!entry.valid) {
            skipped++;
            continue;
        }
        std::string text;
        try {
            text = kl::read_text_file(entry.path);
        } catch (const kl::Error&) {
            skipped++;
            continue;
        }
        if (client.artifact_put(entry.id, text)) {
            pushed++;
        } else {
            failed++;
            std::fprintf(stderr, "kl-cache: push of %s rejected or failed\n", entry.id.c_str());
        }
    }
    std::printf(
        "pushed %zu entr%s to %s (%zu skipped, %zu failed)\n",
        pushed, pushed == 1 ? "y" : "ies", remote.c_str(), skipped, failed);
    return failed == 0 ? 0 : 1;
}

int cmd_pull(const std::string& dir, const std::string& remote) {
    kl::netwisdom::Client client = make_remote(remote);
    const auto ids = client.artifact_list();
    if (!ids) {
        std::fprintf(stderr, "kl-cache: cannot reach %s\n", remote.c_str());
        return 1;
    }
    kl::create_directories(dir);
    size_t pulled = 0;
    size_t failed = 0;
    for (const std::string& id : *ids) {
        const auto entry = client.artifact_get(id);
        if (!entry) {
            failed++;
            continue;
        }
        const kl::rtccache::EntryCheck check = kl::rtccache::validate_entry_text(*entry);
        if (!check.valid || check.id != id) {
            failed++;
            std::fprintf(stderr, "kl-cache: served entry %s failed validation\n", id.c_str());
            continue;
        }
        try {
            const std::string tmp = kl::path_join(dir, ".tmp-pull-" + id);
            kl::write_text_file(tmp, *entry);
            kl::rename_file(tmp, kl::path_join(dir, id + ".json"));
            pulled++;
        } catch (const kl::Error& e) {
            failed++;
            std::fprintf(stderr, "kl-cache: cannot write %s: %s\n", id.c_str(), e.what());
        }
    }
    std::printf(
        "pulled %zu of %zu entr%s from %s into %s\n",
        pulled, ids->size(), ids->size() == 1 ? "y" : "ies", remote.c_str(), dir.c_str());
    return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    std::string dir;
    std::string remote = kl::get_env("KERNEL_LAUNCHER_WISDOM_SERVER").value_or("");
    bool remote_flag = false;  // `stats` goes remote only on an explicit --remote
    std::vector<std::string> words;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "--dir") {
            if (i + 1 >= argc) {
                usage(stderr);
                return 2;
            }
            dir = argv[++i];
        } else if (arg == "--remote") {
            if (i + 1 >= argc) {
                usage(stderr);
                return 2;
            }
            remote = argv[++i];
            remote_flag = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "kl-cache: unknown option '%s'\n", arg.c_str());
            usage(stderr);
            return 2;
        } else {
            words.push_back(arg);
        }
    }

    // Same resolution order as the library: explicit flag, then the
    // environment, then the per-user default directory.
    kl::rtccache::Settings settings = kl::rtccache::Settings::from_env();
    if (!dir.empty()) {
        settings.dir = dir;
    }
    const std::string resolved = settings.resolved_dir();

    const std::string command = words.empty() ? "stats" : words[0];
    const bool needs_remote = command == "push" || command == "pull";
    if (needs_remote && remote.empty()) {
        std::fprintf(
            stderr,
            "kl-cache: %s needs --remote HOST:PORT (or KERNEL_LAUNCHER_WISDOM_SERVER)\n",
            command.c_str());
        return 2;
    }
    try {
        if (command == "stats" && words.size() <= 1) {
            return remote_flag ? cmd_remote_stats(remote) : cmd_stats(resolved);
        }
        if (command == "push" && words.size() <= 1) {
            return cmd_push(resolved, remote);
        }
        if (command == "pull" && words.size() <= 1) {
            return cmd_pull(resolved, remote);
        }
        if (command == "ls" && words.size() <= 1) {
            return cmd_ls(resolved);
        }
        if (command == "verify" && words.size() <= 1) {
            return cmd_verify(resolved);
        }
        if (command == "prune" && words.size() <= 2) {
            uint64_t limit = settings.limit_bytes;
            if (words.size() == 2) {
                limit = kl::rtccache::parse_byte_limit(words[1]);
            }
            return cmd_prune(resolved, limit);
        }
        if (command == "clear" && words.size() <= 1) {
            return cmd_clear(resolved);
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "kl-cache: %s\n", e.what());
        return 1;
    }
    std::fprintf(stderr, "kl-cache: unknown command '%s'\n", command.c_str());
    usage(stderr);
    return 2;
}
