// kl-trace: offline reader for the trace files the library writes when
// KERNEL_LAUNCHER_TRACE_FILE is set. Replays a Chrome trace_event JSON
// dump (mode "full") or a counters dump (mode "counters") into the same
// human-readable flame summary that trace::live_flame_summary() renders
// in-process.
//
// Usage:
//   kl-trace [options] trace.json
//
// Options:
//   --summary        flame summary of the spans plus counters (default)
//   --counters       counters only, one `name value` line each
//   --events         flat span/instant listing, one event per line
//   --category CAT   restrict --events / --summary to one category
//                    (repeatable)
//
// Exit status: 0 on success, 1 when the file cannot be parsed as a trace,
// 2 on usage errors.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "trace/export.hpp"
#include "trace/trace.hpp"
#include "util/errors.hpp"
#include "util/json.hpp"

namespace {

enum class Output {
    Summary,
    Counters,
    Events,
};

struct Options {
    Output output = Output::Summary;
    std::vector<std::string> categories;
    std::string path;
};

void usage(std::FILE* out) {
    std::fprintf(
        out,
        "usage: kl-trace [--summary | --counters | --events]\n"
        "                [--category CAT]... trace.json\n");
}

bool category_selected(const Options& options, const std::string& category) {
    if (options.categories.empty()) {
        return true;
    }
    return std::find(options.categories.begin(), options.categories.end(), category)
        != options.categories.end();
}

std::vector<kl::trace::TraceEvent> filtered_events(
    const kl::trace::ParsedTrace& trace,
    const Options& options) {
    std::vector<kl::trace::TraceEvent> out;
    for (const kl::trace::TraceEvent& event : trace.events) {
        if (category_selected(options, event.category)) {
            out.push_back(event);
        }
    }
    return out;
}

void print_events(const kl::trace::ParsedTrace& trace, const Options& options) {
    for (const kl::trace::TraceEvent& event : filtered_events(trace, options)) {
        std::string line = kl::trace::domain_name(event.domain);
        line += "  ";
        line += event.category + "/" + event.name;
        char buffer[96];
        if (event.phase == kl::trace::TraceEvent::Phase::Complete) {
            std::snprintf(
                buffer,
                sizeof buffer,
                "  [%.3f ms + %.3f ms]",
                event.start_us * 1e-3,
                event.duration_us * 1e-3);
        } else {
            std::snprintf(buffer, sizeof buffer, "  [@%.3f ms]", event.start_us * 1e-3);
        }
        line += buffer;
        line += "  on ";
        line += trace.track_name(event);
        for (const auto& [key, value] : event.args) {
            line += "  " + key + "=" + value;
        }
        std::printf("%s\n", line.c_str());
    }
}

void print_counters(const kl::trace::ParsedTrace& trace) {
    for (const auto& [name, value] : trace.counters) {
        std::printf("%-28s %" PRIu64 "\n", name.c_str(), value);
    }
}

int run(const Options& options) {
    kl::json::Value root = kl::json::parse_file(options.path);

    // A counters-only dump ({"counters": {...}}) has no events at all;
    // normalize it into a ParsedTrace so every output mode works on both.
    kl::trace::ParsedTrace trace;
    if (const kl::json::Value* counters = root.find("counters")) {
        for (const auto& [name, value] : counters->as_object()) {
            trace.counters.emplace(name, static_cast<uint64_t>(value.as_double()));
        }
    } else {
        trace = kl::trace::parse_chrome_trace(root);
    }

    switch (options.output) {
        case Output::Summary: {
            std::string summary = kl::trace::render_flame_summary(
                filtered_events(trace, options), trace.counters);
            std::fputs(summary.c_str(), stdout);
            break;
        }
        case Output::Counters:
            print_counters(trace);
            break;
        case Output::Events:
            print_events(trace, options);
            break;
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    Options options;
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg == "--summary") {
            options.output = Output::Summary;
        } else if (arg == "--counters") {
            options.output = Output::Counters;
        } else if (arg == "--events") {
            options.output = Output::Events;
        } else if (arg == "--category") {
            if (i + 1 >= argc) {
                usage(stderr);
                return 2;
            }
            options.categories.emplace_back(argv[++i]);
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "kl-trace: unknown option '%s'\n", arg.c_str());
            usage(stderr);
            return 2;
        } else if (options.path.empty()) {
            options.path = arg;
        } else {
            usage(stderr);
            return 2;
        }
    }
    if (options.path.empty()) {
        usage(stderr);
        return 2;
    }

    try {
        return run(options);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "kl-trace: %s\n", e.what());
        return 1;
    }
}
